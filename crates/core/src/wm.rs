//! The Weight-Median Sketch — Algorithm 1 of the paper.
//!
//! A Count-Sketch-shaped array `z ∈ R^{s × k/s}` holds a compressed linear
//! classifier. Each update performs online gradient descent *in sketch
//! space* on the compressed objective
//! `L̂_t(z) = ℓ(y_t·zᵀRx_t) + (λ/2)‖z‖₂²`, where `R = A/√s` is the scaled
//! Count-Sketch projection:
//!
//! ```text
//! τ ← zᵀRx                     (prediction)
//! z ← (1 − λη_t)·z − η_t·y·ℓ'(yτ)·Rx
//! ```
//!
//! Queries recover individual weights by Count-Sketch estimation on `√s·z`:
//! `ŵ_i = median_j(√s·σ_j(i)·z[j, h_j(i)])`. Theorem 1/2 guarantee
//! `|ŵ_i − w*_i| ≤ ε‖w*‖₁` for `k = Õ(ε⁻⁴)`, `s = Õ(ε⁻²)`.
//!
//! The `(1 − λη_t)` decay uses the global-scale trick (§5.1), so an update
//! costs `O(s·nnz(x))` rather than `O(k)`. A passive top-K heap tracks the
//! heaviest estimated weights for `O(1)`-time retrieval, as in the
//! reference implementation.

use crate::delta::DirtyCells;
use wmsketch_hashing::codec::{self, CodecError, Reader, SnapshotCodec, Writer, KIND_WM};
use wmsketch_hashing::{CoordPlan, HashFamilyKind, RowHashers};
use wmsketch_learn::{
    debug_check_label, Label, LearningRate, Loss, LossKind, MergeableLearner, OnlineLearner,
    ScaleState, SparseVector, TopKRecovery, WeightEntry, WeightEstimator,
};
use wmsketch_sketch::{median_inplace, signed_median_estimate};

/// Section tag: learner configuration (shape, hyperparameters, hashing).
pub(crate) const SECTION_CONFIG: u8 = 0x01;
/// Section tag: row-major `f64` sketch cells.
pub(crate) const SECTION_CELLS: u8 = 0x02;
/// Section tag: mutable training state (update clock, scale).
pub(crate) const SECTION_STATE: u8 = 0x03;
/// Section tag: top-K heap / active-set contents.
pub(crate) const SECTION_TOPK: u8 = 0x04;

/// Configuration for [`WmSketch`].
#[derive(Debug, Clone, Copy)]
pub struct WmSketchConfig {
    /// Buckets per row (`k/s` in the paper). The total sketch size is
    /// `width × depth`.
    pub width: u32,
    /// Number of rows `s`.
    pub depth: u32,
    /// Capacity of the passive top-K heap (`|S|`); 0 disables the heap
    /// (recovery then requires scanning a candidate domain).
    pub heap_capacity: usize,
    /// `ℓ2` regularization strength λ.
    pub lambda: f64,
    /// Learning-rate schedule (paper default `0.1/√t`).
    pub learning_rate: LearningRate,
    /// Loss function (paper default logistic).
    pub loss: LossKind,
    /// Hash family for the projection (paper default: tabulation).
    pub hash_family: HashFamilyKind,
    /// Seed for all hash functions.
    pub seed: u64,
}

impl WmSketchConfig {
    /// A `width × depth` sketch with a 128-entry heap and paper-default
    /// hyperparameters.
    #[must_use]
    pub fn new(width: u32, depth: u32) -> Self {
        Self {
            width,
            depth,
            heap_capacity: 128,
            lambda: 1e-6,
            learning_rate: LearningRate::default(),
            loss: LossKind::Logistic,
            hash_family: HashFamilyKind::Tabulation,
            seed: 0,
        }
    }

    /// The best-performing shape for a byte budget per the paper's Table 2
    /// sweeps for the *basic* WM-Sketch: a 128-entry heap, width 128, and
    /// all remaining budget spent on depth.
    #[must_use]
    pub fn with_budget_bytes(budget: usize) -> Self {
        let heap = 128usize;
        let heap_bytes = heap * 2 * crate::budget::BYTES_PER_UNIT;
        let cells = budget.saturating_sub(heap_bytes) / crate::budget::BYTES_PER_UNIT;
        let width = 128u32;
        let depth = (cells as u32 / width).max(1);
        let mut cfg = Self::new(width, depth);
        cfg.heap_capacity = heap;
        cfg
    }

    /// Sets the heap capacity.
    #[must_use]
    pub fn heap_capacity(mut self, cap: usize) -> Self {
        self.heap_capacity = cap;
        self
    }

    /// Sets λ.
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the learning-rate schedule.
    #[must_use]
    pub fn learning_rate(mut self, lr: LearningRate) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the loss.
    #[must_use]
    pub fn loss(mut self, loss: LossKind) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the hash family.
    #[must_use]
    pub fn hash_family(mut self, kind: HashFamilyKind) -> Self {
        self.hash_family = kind;
        self
    }

    /// Sets the hash seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Memory cost in bytes under the paper's §7.1 model.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        crate::budget::wm_bytes(
            self.heap_capacity,
            self.width as usize * self.depth as usize,
        )
    }
}

/// The Weight-Median Sketch (see module docs).
///
/// Cloning copies the full model (hash functions included), so a clone is
/// merge-compatible with its source — the basis of sharded training.
#[derive(Clone)]
pub struct WmSketch {
    cfg: WmSketchConfig,
    hashers: RowHashers,
    /// Row-major `depth × width` pre-scale sketch cells; logical `z = α·z_v`.
    z: Vec<f64>,
    scale: ScaleState,
    /// `1/√s`, the projection scaling of `R = A/√s`.
    inv_sqrt_s: f64,
    /// `√s`, the query-side rescaling.
    sqrt_s: f64,
    heap: Option<wmsketch_hh::TopKWeights>,
    /// Cached per-example coordinates for the single-hash update pipeline;
    /// buffers are reused across updates.
    plan: CoordPlan,
    t: u64,
    /// Per-cell last-touched stamps for delta snapshots; off (empty) until
    /// the first [`WmSketch::encode_delta_since`] call.
    dirty: DirtyCells,
}

impl std::fmt::Debug for WmSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WmSketch")
            .field("width", &self.cfg.width)
            .field("depth", &self.cfg.depth)
            .field("t", &self.t)
            .finish_non_exhaustive()
    }
}

impl WmSketch {
    /// Creates a zero-initialized WM-Sketch.
    ///
    /// # Panics
    /// Panics if `width == 0` or `depth == 0`.
    #[must_use]
    pub fn new(cfg: WmSketchConfig) -> Self {
        let z = vec![0.0; cfg.depth as usize * cfg.width as usize];
        let heap =
            (cfg.heap_capacity > 0).then(|| wmsketch_hh::TopKWeights::new(cfg.heap_capacity));
        Self::from_parts(cfg, z, ScaleState::new(), 0, heap)
    }

    /// Assembles a sketch from already-built state — the single
    /// construction site shared by [`WmSketch::new`] and the snapshot
    /// decoder (which would otherwise allocate a zeroed cell vector and a
    /// heap only to overwrite both).
    fn from_parts(
        cfg: WmSketchConfig,
        z: Vec<f64>,
        scale: ScaleState,
        t: u64,
        heap: Option<wmsketch_hh::TopKWeights>,
    ) -> Self {
        let hashers = RowHashers::new(cfg.hash_family, cfg.depth, cfg.width, cfg.seed);
        let s = f64::from(cfg.depth);
        Self {
            cfg,
            hashers,
            z,
            scale,
            inv_sqrt_s: 1.0 / s.sqrt(),
            sqrt_s: s.sqrt(),
            heap,
            plan: CoordPlan::new(),
            t,
            dirty: DirtyCells::off(),
        }
    }

    /// The configuration this sketch was built with.
    #[must_use]
    pub fn config(&self) -> &WmSketchConfig {
        &self.cfg
    }

    /// Memory cost in bytes under the paper's §7.1 model.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.cfg.memory_bytes()
    }

    /// Estimated bytes this instance actually holds resident: the cell
    /// array, the heap at its allocated capacity, the row-hash tables
    /// (16 KiB per row under tabulation), and the retained
    /// coordinate-plan scratch — the figure a memory governor should
    /// charge, all of it reclaimed by spilling (hashers and scratch
    /// rebuild deterministically on revival).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.z.capacity() * std::mem::size_of::<f64>()
            + self
                .heap
                .as_ref()
                .map_or(0, wmsketch_hh::TopKWeights::resident_bytes)
            + self.hashers.resident_bytes()
            + self.plan.resident_bytes()
            + self.dirty.resident_bytes()
    }

    /// The estimated weight of `feature` via Count-Sketch median recovery
    /// (pre-scale; multiply by α for the logical value).
    fn query_stored(&self, feature: u32) -> f64 {
        signed_median_estimate(&self.hashers, &self.z, u64::from(feature), self.sqrt_s)
    }

    fn fold_scale(&mut self) {
        let a = self.scale.fold();
        for v in &mut self.z {
            *v *= a;
        }
        // A fold rewrites every stored cell, so everything is dirty at the
        // current epoch (the logical weights are unchanged, but deltas ship
        // stored bits).
        self.dirty.touch_all();
    }

    /// Pre-scale margin contribution `z_vᵀRx`.
    fn raw_margin(&self, x: &SparseVector) -> f64 {
        let width = self.cfg.width as usize;
        let mut acc = 0.0;
        for (i, xi) in x.iter() {
            let mut proj = 0.0;
            for (j, bs) in self.hashers.bucket_signs(u64::from(i)) {
                proj += bs.sign * self.z[j * width + bs.bucket as usize];
            }
            acc += xi * proj;
        }
        acc * self.inv_sqrt_s
    }

    /// The seed implementation's three-pass update, retained as the
    /// reference path: it hashes every active feature once in the margin,
    /// again in the gradient scatter, and a third time per feature for
    /// passive heap maintenance. [`WmSketch::update`] is the fused
    /// single-hash pipeline; golden tests assert the two produce
    /// bit-identical sketches, and the `update_throughput` benchmark
    /// measures the speedup.
    pub fn update_naive(&mut self, x: &SparseVector, y: Label) {
        debug_check_label(y);
        self.t += 1;
        self.dirty.set_epoch(self.t);
        let eta = self.cfg.learning_rate.at(self.t);
        let tau = self.scale.load(self.raw_margin(x));
        let g = self.cfg.loss.deriv(f64::from(y) * tau) * f64::from(y);
        if self.scale.decay(eta, self.cfg.lambda) {
            self.fold_scale();
        }
        if g != 0.0 {
            let width = self.cfg.width as usize;
            for (i, xi) in x.iter() {
                let delta = self.scale.store(-eta * g * xi * self.inv_sqrt_s);
                for (j, bs) in self.hashers.bucket_signs(u64::from(i)) {
                    let cell = j * width + bs.bucket as usize;
                    self.z[cell] += bs.sign * delta;
                    self.dirty.touch(cell);
                }
                if self.heap.is_some() {
                    // Passive heap maintenance: re-estimate the feature
                    // just touched and offer it (borrow split: estimate
                    // first, then mutate the heap).
                    let est = self.query_stored(i);
                    if let Some(heap) = &mut self.heap {
                        heap.offer(i, est);
                    }
                }
            }
            if self.heap.is_some() {
                self.dirty.touch_heap();
            }
        }
    }

    /// (Re)starts dirty-cell tracking with everything considered dirty at
    /// the current clock — the state right after shipping a full snapshot.
    pub(crate) fn begin_tracking(&mut self) {
        let cells = self.z.len();
        self.dirty.enable(cells, self.t);
    }

    /// Whether a sparse delta since `since` can be encoded (tracking on,
    /// no clock-less mutation since, watermark not in the future).
    pub(crate) fn can_delta(&self, since: u64) -> bool {
        self.dirty.can_delta(since, self.t)
    }

    /// Encodes the delta body sections (everything after the HEAD):
    /// sparse dirty cells, the full scalar state, and the top-K heap when
    /// it moved since `since`.
    pub(crate) fn encode_delta_body(&self, since: u64, w: &mut Writer) {
        codec::put_delta_cells(w, &self.dirty.changed(&self.z, since));
        let mark = w.begin_section(codec::DELTA_SECTION_STATE);
        w.put_u64(self.t);
        self.scale.encode_into(w);
        w.end_section(mark);
        let mark = w.begin_section(codec::DELTA_SECTION_TOPK);
        if self.dirty.heap_dirty(since) {
            w.put_u8(1);
            match &self.heap {
                Some(heap) => {
                    w.put_u8(1);
                    heap.encode_into(w);
                }
                None => w.put_u8(0),
            }
        } else {
            w.put_u8(0);
        }
        w.end_section(mark);
    }

    /// Decodes and applies the delta body sections written by
    /// [`WmSketch::encode_delta_body`]. On error the sketch is unchanged.
    pub(crate) fn apply_delta_body(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let cells = codec::take_delta_cells(r, self.z.len())?;
        let mut s = r.expect_section(codec::DELTA_SECTION_STATE)?;
        let t = s.take_u64()?;
        let scale = ScaleState::decode_from(&mut s)?;
        s.finish()?;
        let mut h = r.expect_section(codec::DELTA_SECTION_TOPK)?;
        let heap = match h.take_u8()? {
            // 0: the heap did not move since the watermark; keep ours.
            0 => None,
            1 => Some(match h.take_u8()? {
                0 if self.cfg.heap_capacity == 0 => None,
                0 => return Err(CodecError::Invalid("missing heap for heap_capacity > 0")),
                1 => Some(wmsketch_hh::TopKWeights::decode_from(
                    &mut h,
                    self.cfg.heap_capacity,
                )?),
                _ => return Err(CodecError::Invalid("bad top-K presence flag")),
            }),
            _ => return Err(CodecError::Invalid("bad delta top-K change flag")),
        };
        h.finish()?;
        // Everything validated; commit.
        for (idx, bits) in cells {
            self.z[idx as usize] = f64::from_bits(bits);
        }
        self.t = t;
        self.scale = scale;
        if let Some(heap) = heap {
            self.heap = heap;
        }
        // Applied state does not correspond to locally-tracked history any
        // more; restart tracking conservatively (everything dirty now).
        if self.dirty.enabled() {
            self.begin_tracking();
        }
        Ok(())
    }

    /// Encodes a **delta record**: the state changed since clock `since`,
    /// as shipped to a replica whose copy of this model is exactly the
    /// state at `since`. Applying it with [`WmSketch::apply_delta`] makes
    /// the replica bit-identical to this sketch — `base + delta` re-encodes
    /// byte-for-byte equal to [`SnapshotCodec::to_snapshot_bytes`].
    ///
    /// Layout (after the `WMS1` envelope with [`codec::FLAG_DELTA`]):
    ///
    /// ```text
    /// section 0x20 HEAD:  from_clock (u64) | to_clock (u64)
    /// section 0x21 CELLS: count (u64) | count × (index u32, f64 bits u64)
    /// section 0x22 STATE: t (u64) | alpha (f64) | fold threshold (f64)
    /// section 0x23 TOPK:  changed (u8) | [present (u8) | [heap]]
    /// ```
    ///
    /// Deltas *overwrite* raw cell bit patterns rather than adding values:
    /// sketch updates are state-dependent (the margin feeds the gradient),
    /// so only overwrites preserve bit-identity.
    ///
    /// Falls back to a **full snapshot** (and switches dirty-cell tracking
    /// on) when a sparse delta since `since` cannot be produced: on the
    /// first call, after decoding, when `since` is in the future, or after
    /// a clock-less mutation (merging a zero-clock peer). Callers
    /// distinguish the two record shapes with [`codec::is_delta_record`].
    #[must_use]
    pub fn encode_delta_since(&mut self, since: u64) -> Vec<u8> {
        if !self.can_delta(since) {
            self.begin_tracking();
            return self.to_snapshot_bytes();
        }
        let mut w = Writer::new();
        w.put_delta_envelope(KIND_WM);
        let mark = w.begin_section(codec::DELTA_SECTION_HEAD);
        w.put_u64(since);
        w.put_u64(self.t);
        w.end_section(mark);
        self.encode_delta_body(since, &mut w);
        let mut bytes = w.into_bytes();
        codec::seal_record(&mut bytes);
        bytes
    }

    /// Applies a delta record produced by [`WmSketch::encode_delta_since`]
    /// and returns the new clock. The record's `from_clock` must equal this
    /// sketch's clock exactly; a mismatch is [`CodecError::DeltaGap`] and
    /// leaves the sketch unchanged (re-pull from the origin with the right
    /// watermark). On any other decode error mid-apply the state is
    /// unspecified and must be discarded.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<u64, CodecError> {
        let bytes = codec::verify_integrity(bytes)?;
        let mut r = Reader::new(bytes);
        r.expect_delta_envelope(KIND_WM)?;
        let mut head = r.expect_section(codec::DELTA_SECTION_HEAD)?;
        let from = head.take_u64()?;
        let to = head.take_u64()?;
        head.finish()?;
        if to < from {
            return Err(CodecError::Invalid("delta interval is reversed"));
        }
        if from != self.t {
            return Err(CodecError::DeltaGap {
                expected: self.t,
                got: from,
            });
        }
        self.apply_delta_body(&mut r)?;
        r.finish()?;
        if self.t != to {
            return Err(CodecError::Invalid(
                "delta state clock disagrees with its interval",
            ));
        }
        Ok(self.t)
    }
}

impl MergeableLearner for WmSketch {
    /// Merge compatibility requires the same sketch shape, hash family,
    /// and seed (so both models live in the same projected space). Heap
    /// capacity and hyperparameters may differ — e.g. a sharded root with
    /// a query heap merging heap-free workers.
    fn merge_compatible(&self, other: &Self) -> bool {
        self.cfg.width == other.cfg.width
            && self.cfg.depth == other.cfg.depth
            && self.cfg.hash_family == other.cfg.hash_family
            && self.cfg.seed == other.cfg.seed
    }

    /// Adds `other`'s model into `self` by Count-Sketch linearity.
    ///
    /// Both learners store pre-scale cells `z_v` with logical cells
    /// `z = α·z_v`; the merge folds `self`'s scale and adds `other`'s
    /// *logical* cells, so the merged sketch is exactly the sketch of the
    /// two concatenated (post-decay) gradient streams. The passive top-K
    /// heap is then rebuilt from the union of both heaps' features,
    /// re-estimated against the merged cells — stale per-shard estimates
    /// are never merged directly.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "merging incompatible WM-Sketches ({}x{} seed {} vs {}x{} seed {})",
            self.cfg.width,
            self.cfg.depth,
            self.cfg.seed,
            other.cfg.width,
            other.cfg.depth,
            other.cfg.seed
        );
        // Stamp the whole merge at the post-merge clock; a zero-clock peer
        // would change bits without advancing the clock, which no sparse
        // delta watermark can express.
        self.dirty.set_epoch(self.t + other.t);
        if other.t == 0 {
            self.dirty.require_full();
        }
        self.fold_scale();
        for (cell, &o) in self.z.iter_mut().zip(&other.z) {
            *cell += other.scale.load(o);
        }
        self.dirty.touch_all();
        self.t += other.t;
        if self.heap.is_some() {
            // rebuild_top_k unions with self's current heap features, so
            // only other's need passing explicitly.
            let feats: Vec<u32> = other
                .heap
                .iter()
                .flat_map(wmsketch_hh::TopKWeights::iter)
                .map(|e| e.feature)
                .collect();
            self.rebuild_top_k(&feats);
        }
    }

    /// Rebuilds the passive heap with the heaviest of `candidates` *and*
    /// the features currently tracked — the heap is passive (stale
    /// estimates, no exact state), so the union is re-estimated from the
    /// current cells and only the ranking survives. Keeping the current
    /// features in the candidate pool means a rebuild can only improve
    /// the heap: features carried in by a merge (e.g. a shipped snapshot
    /// absorbed between syncs) are never silently dropped by a later
    /// tracker-driven rebuild. A no-op when the heap is disabled.
    /// Candidate order does not matter: entries are ranked by
    /// `(|estimate| desc, feature asc)` before insertion, so the result is
    /// deterministic.
    fn rebuild_top_k(&mut self, candidates: &[u32]) {
        if self.heap.is_none() {
            return;
        }
        let mut union: Vec<u32> = self
            .heap
            .iter()
            .flat_map(wmsketch_hh::TopKWeights::iter)
            .map(|e| e.feature)
            .collect();
        union.extend_from_slice(candidates);
        union.sort_unstable();
        union.dedup();
        let ranked: Vec<WeightEntry> = union
            .iter()
            .map(|&f| WeightEntry {
                feature: f,
                weight: signed_median_estimate(&self.hashers, &self.z, u64::from(f), self.sqrt_s),
            })
            .collect();
        let heap = self.heap.as_mut().expect("checked above");
        *heap = wmsketch_hh::TopKWeights::from_heaviest(heap.capacity(), ranked);
        self.dirty.touch_heap();
    }

    fn inherit_delta_stamps(&mut self, prev: &Self) {
        self.dirty.inherit(&prev.dirty, &self.z, &prev.z, self.t);
    }
}

/// Largest heap capacity a snapshot may declare. Constructing a sketch
/// from a decoded config allocates `O(heap_capacity)` heap/index slots up
/// front (before any per-entry validation runs), so an unbounded decoded
/// capacity would let a crafted snapshot — reachable remotely via the
/// serve crate's MERGE and RESTORE ops — demand an absurd reservation or
/// abort on capacity overflow. Real configurations use a few hundred to a
/// few thousand slots (the paper's Table 2 tops out at 2048).
pub const MAX_HEAP_CAPACITY: usize = 1 << 20;

/// Encodes a [`WmSketchConfig`] into the shared CONFIG section layout:
/// `width (u32) | depth (u32) | heap_capacity (u64) | lambda (f64)
/// | learning_rate | loss | hash_family | seed (u64)`.
pub(crate) fn put_wm_config(w: &mut Writer, cfg: &WmSketchConfig) {
    let mark = w.begin_section(SECTION_CONFIG);
    w.put_u32(cfg.width);
    w.put_u32(cfg.depth);
    w.put_u64(cfg.heap_capacity as u64);
    w.put_f64(cfg.lambda);
    cfg.learning_rate.encode_into(w);
    cfg.loss.encode_into(w);
    codec::put_hash_family(w, cfg.hash_family);
    w.put_u64(cfg.seed);
    w.end_section(mark);
}

/// Decodes a CONFIG section written by [`put_wm_config`], validating the
/// shape invariants the constructors would otherwise panic on.
pub(crate) fn take_wm_config(r: &mut Reader<'_>) -> Result<WmSketchConfig, CodecError> {
    let mut s = r.expect_section(SECTION_CONFIG)?;
    let width = s.take_u32()?;
    let depth = s.take_u32()?;
    let heap_capacity = usize::try_from(s.take_u64()?)
        .map_err(|_| CodecError::Invalid("heap capacity overflows usize"))?;
    let lambda = s.take_f64()?;
    let learning_rate = LearningRate::decode_from(&mut s)?;
    let loss = LossKind::decode_from(&mut s)?;
    let hash_family = codec::take_hash_family(&mut s)?;
    let seed = s.take_u64()?;
    s.finish()?;
    if width == 0 || depth == 0 {
        return Err(CodecError::Invalid("sketch width/depth must be nonzero"));
    }
    if heap_capacity > MAX_HEAP_CAPACITY {
        return Err(CodecError::Invalid("heap capacity is implausibly large"));
    }
    if !lambda.is_finite() {
        return Err(CodecError::Invalid("lambda must be finite"));
    }
    Ok(WmSketchConfig {
        width,
        depth,
        heap_capacity,
        lambda,
        learning_rate,
        loss,
        hash_family,
        seed,
    })
}

/// Snapshot layout (after the `WMS1` envelope, kind
/// [`KIND_WM`]):
///
/// ```text
/// section 0x01 CONFIG: width (u32) | depth (u32) | heap_capacity (u64)
///                    | lambda (f64) | learning_rate | loss
///                    | hash_family | seed (u64)
/// section 0x02 CELLS:  count (u64) | count × f64 pre-scale cells z_v
/// section 0x03 STATE:  t (u64) | alpha (f64) | fold threshold (f64)
/// section 0x04 TOPK:   present (u8) | [capacity (u64) | count (u64)
///                    | count × (feature u32, weight f64)]
/// ```
///
/// Everything that determines future behavior is captured — cells, the
/// global scale, the update clock, the heap contents, and the hash-family
/// kind + seed that pin the projection — so a decoded sketch is
/// [`MergeableLearner::merge_compatible`] with its origin and continues
/// training identically.
impl SnapshotCodec for WmSketch {
    const KIND: u8 = KIND_WM;

    fn encode_body(&self, w: &mut Writer) {
        put_wm_config(w, &self.cfg);
        codec::put_f64_section(w, SECTION_CELLS, &self.z);
        let mark = w.begin_section(SECTION_STATE);
        w.put_u64(self.t);
        self.scale.encode_into(w);
        w.end_section(mark);
        let mark = w.begin_section(SECTION_TOPK);
        match &self.heap {
            Some(heap) => {
                w.put_u8(1);
                heap.encode_into(w);
            }
            None => w.put_u8(0),
        }
        w.end_section(mark);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let cfg = take_wm_config(r)?;
        let expected = (cfg.depth as usize)
            .checked_mul(cfg.width as usize)
            .ok_or(CodecError::Invalid("depth*width overflows"))?;
        let z = codec::take_f64_section(r, SECTION_CELLS, expected)?;
        let mut s = r.expect_section(SECTION_STATE)?;
        let t = s.take_u64()?;
        let scale = ScaleState::decode_from(&mut s)?;
        s.finish()?;
        let mut h = r.expect_section(SECTION_TOPK)?;
        let heap = match h.take_u8()? {
            0 if cfg.heap_capacity == 0 => None,
            0 => return Err(CodecError::Invalid("missing heap for heap_capacity > 0")),
            1 => Some(wmsketch_hh::TopKWeights::decode_from(
                &mut h,
                cfg.heap_capacity,
            )?),
            _ => return Err(CodecError::Invalid("bad top-K presence flag")),
        };
        h.finish()?;
        Ok(Self::from_parts(cfg, z, scale, t, heap))
    }
}

impl OnlineLearner for WmSketch {
    fn margin(&self, x: &SparseVector) -> f64 {
        self.scale.load(self.raw_margin(x))
    }

    /// The fused single-hash update pipeline.
    ///
    /// Hashes every active feature exactly once per row
    /// ([`RowHashers::fill_plan`]) and replays the cached coordinates for
    /// all three traversals the seed path paid separate hashing for: the
    /// margin dot-product, the gradient scatter, and the post-scatter
    /// median re-estimation feeding the passive top-K heap. The
    /// gather/scatter walks run through the runtime-dispatched kernels in
    /// `wmsketch_hashing::simd`, and depth-1 sketches take a fast path
    /// that skips the median machinery (a 1-row "median" is the
    /// sign-corrected cell). Arithmetic order matches
    /// [`WmSketch::update_naive`] operation for operation, so the
    /// resulting sketch state is bit-identical.
    fn update(&mut self, x: &SparseVector, y: Label) {
        debug_check_label(y);
        self.t += 1;
        self.dirty.set_epoch(self.t);
        let eta = self.cfg.learning_rate.at(self.t);
        // Single hashing pass over the example.
        self.hashers.fill_plan(&mut self.plan, x.indices());
        // Pass 1 over cached coords: margin.
        let mut acc = 0.0;
        for (slot, xi) in x.values().iter().enumerate() {
            acc += xi * self.plan.slot_projection(slot, &self.z);
        }
        let tau = self.scale.load(acc * self.inv_sqrt_s);
        let g = self.cfg.loss.deriv(f64::from(y) * tau) * f64::from(y);
        if self.scale.decay(eta, self.cfg.lambda) {
            self.fold_scale();
        }
        if g != 0.0 {
            let inv_sqrt_s = self.inv_sqrt_s;
            let sqrt_s = self.sqrt_s;
            let scale = self.scale;
            let Self {
                z,
                plan,
                heap,
                dirty,
                ..
            } = self;
            let depth_one = plan.depth() == 1;
            let tracking = dirty.enabled();
            for (slot, (i, xi)) in x.iter().enumerate() {
                let delta = scale.store(-eta * g * xi * inv_sqrt_s);
                if let Some(heap) = heap {
                    // Passes 2+3 fused: gradient scatter and passive heap
                    // maintenance in one walk over the cached cells — the
                    // post-scatter median comes from the values just
                    // written, not a fresh hash-and-recover per feature.
                    let est = if depth_one {
                        // Depth-1 fast path: one cell, no median buffer.
                        // `+ 0.0` canonicalizes -0.0 exactly as
                        // median_inplace would.
                        let (offsets, signs) = plan.coords(slot);
                        let cell = &mut z[offsets[0] as usize];
                        *cell += signs[0] * delta;
                        sqrt_s * signs[0] * *cell + 0.0
                    } else {
                        median_inplace(plan.slot_scatter_and_values(slot, z, delta, sqrt_s))
                    };
                    heap.offer(i, est);
                } else {
                    plan.slot_scatter(slot, z, delta);
                }
                if tracking {
                    for &o in plan.coords(slot).0 {
                        dirty.touch(o as usize);
                    }
                }
            }
            if heap.is_some() {
                dirty.touch_heap();
            }
        }
    }

    fn examples_seen(&self) -> u64 {
        self.t
    }
}

impl WeightEstimator for WmSketch {
    fn estimate(&self, feature: u32) -> f64 {
        self.scale.load(self.query_stored(feature))
    }
}

impl TopKRecovery for WmSketch {
    /// Top-K from the passive heap, with each weight re-estimated from the
    /// sketch at query time (the heap's stored values can be stale: later
    /// collisions change a feature's median estimate).
    fn recover_top_k(&self, k: usize) -> Vec<WeightEntry> {
        let Some(heap) = &self.heap else {
            return Vec::new();
        };
        let mut entries: Vec<WeightEntry> = heap
            .iter()
            .map(|e| WeightEntry {
                feature: e.feature,
                weight: self.estimate(e.feature),
            })
            .collect();
        entries.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .expect("NaN weight")
                .then(a.feature.cmp(&b.feature))
        });
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_stream(n: usize) -> impl Iterator<Item = (SparseVector, Label)> {
        // Features 3 and 9 are discriminative; tail features 100.. are noise.
        (0..n).map(|t| {
            let noise = 100 + (t * 17 % 400) as u32;
            if t % 2 == 0 {
                (SparseVector::from_pairs(&[(3, 1.0), (noise, 0.5)]), 1)
            } else {
                (SparseVector::from_pairs(&[(9, 1.0), (noise, 0.5)]), -1)
            }
        })
    }

    #[test]
    fn recovers_planted_discriminative_features() {
        let mut wm = WmSketch::new(WmSketchConfig::new(256, 4).lambda(1e-5).seed(3));
        for (x, y) in planted_stream(4000) {
            wm.update(&x, y);
        }
        assert!(wm.estimate(3) > 0.2, "w(3) = {}", wm.estimate(3));
        assert!(wm.estimate(9) < -0.2, "w(9) = {}", wm.estimate(9));
        let top: Vec<u32> = wm.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
    }

    #[test]
    fn classification_works_through_sketch() {
        let mut wm = WmSketch::new(WmSketchConfig::new(128, 2).seed(5));
        for (x, y) in planted_stream(2000) {
            wm.update(&x, y);
        }
        assert_eq!(wm.predict(&SparseVector::one_hot(3, 1.0)), 1);
        assert_eq!(wm.predict(&SparseVector::one_hot(9, 1.0)), -1);
    }

    #[test]
    fn matches_dense_ogd_when_projection_is_lossless() {
        // With width ≫ number of active features and depth 1, collisions are
        // (almost surely) absent and the sketch should track dense OGD
        // exactly: the Count-Sketch projection restricted to the active
        // features is then an isometry (a signed permutation).
        use wmsketch_learn::{LogisticRegression, LogisticRegressionConfig};
        let mut wm = WmSketch::new(WmSketchConfig::new(4096, 1).lambda(1e-4).seed(11));
        let mut lr = LogisticRegression::new(
            LogisticRegressionConfig::new(16)
                .lambda(1e-4)
                .track_top_k(0),
        );
        let stream: Vec<(SparseVector, Label)> = (0..500)
            .map(|t| {
                let f = (t % 8) as u32;
                let y: Label = if f < 4 { 1 } else { -1 };
                (SparseVector::from_pairs(&[(f, 1.0), (8 + f, 0.25)]), y)
            })
            .collect();
        // Verify no collisions among the 16 active features for this seed.
        let hasher = RowHashers::new(HashFamilyKind::Tabulation, 1, 4096, 11);
        let buckets: std::collections::HashSet<u32> = (0..16u64)
            .map(|i| hasher.bucket_sign(0, i).bucket)
            .collect();
        assert_eq!(buckets.len(), 16, "collision in test setup; change seed");
        for (x, y) in &stream {
            wm.update(x, *y);
            lr.update(x, *y);
        }
        for f in 0..16u32 {
            assert!(
                (wm.estimate(f) - lr.weight(f)).abs() < 1e-9,
                "feature {f}: wm {} vs dense {}",
                wm.estimate(f),
                lr.weight(f)
            );
        }
    }

    #[test]
    fn unseen_features_estimate_near_zero_on_empty_sketch() {
        let wm = WmSketch::new(WmSketchConfig::new(64, 3));
        for f in 0..50u32 {
            assert_eq!(wm.estimate(f), 0.0);
        }
    }

    #[test]
    fn heap_disabled_returns_empty_top_k() {
        let mut wm = WmSketch::new(WmSketchConfig::new(64, 2).heap_capacity(0));
        for (x, y) in planted_stream(100) {
            wm.update(&x, y);
        }
        assert!(wm.recover_top_k(5).is_empty());
        // But point estimation still works.
        assert!(wm.estimate(3).abs() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut wm = WmSketch::new(WmSketchConfig::new(128, 2).seed(9));
            for (x, y) in planted_stream(500) {
                wm.update(&x, y);
            }
            (0..20u32).map(|f| wm.estimate(f)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_of_split_stream_recovers_planted_features() {
        // Each half-stream carries the same planted signal; the merged
        // model (the sum of the two) must recover it with correct signs.
        let cfg = WmSketchConfig::new(256, 4).lambda(1e-5).seed(3);
        let mut a = WmSketch::new(cfg);
        let mut b = WmSketch::new(cfg);
        for (i, (x, y)) in planted_stream(4000).enumerate() {
            if i % 2 == 0 {
                a.update(&x, y);
            } else {
                b.update(&x, y);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.examples_seen(), 4000);
        assert!(a.estimate(3) > 0.2, "w(3) = {}", a.estimate(3));
        assert!(a.estimate(9) < -0.2, "w(9) = {}", a.estimate(9));
        let top: Vec<u32> = a.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
    }

    #[test]
    fn depth_one_merge_estimates_are_exactly_additive() {
        // At depth 1 the estimate reads a single cell, so per-feature
        // estimates of the merged sketch equal the sum of the two models'
        // estimates bit for bit (sign ±1 distributes exactly over +).
        let cfg = WmSketchConfig::new(512, 1).lambda(1e-4).seed(7);
        let mut a = WmSketch::new(cfg);
        let mut b = WmSketch::new(cfg);
        for (i, (x, y)) in planted_stream(1500).enumerate() {
            if i < 700 {
                a.update(&x, y);
            } else {
                b.update(&x, y);
            }
        }
        let expected: Vec<f64> = (0..600u32).map(|f| a.estimate(f) + b.estimate(f)).collect();
        a.merge_from(&b);
        for f in 0..600u32 {
            assert!(
                a.estimate(f).to_bits() == expected[f as usize].to_bits(),
                "feature {f}: merged {} vs sum {}",
                a.estimate(f),
                expected[f as usize]
            );
        }
    }

    #[test]
    fn merge_into_untrained_clone_preserves_estimates() {
        // Depth 4: √s = 2 is a power of two, so the query-side rescaling
        // commutes with rounding and the bit-equality assertions below are
        // exact rather than ULP-fragile.
        let cfg = WmSketchConfig::new(128, 4).seed(5);
        let mut trained = WmSketch::new(cfg);
        for (x, y) in planted_stream(1000) {
            trained.update(&x, y);
        }
        let mut empty = WmSketch::new(cfg);
        empty.merge_from(&trained);
        assert_eq!(empty.examples_seen(), trained.examples_seen());
        for f in 0..600u32 {
            assert!(
                empty.estimate(f).to_bits() == trained.estimate(f).to_bits(),
                "feature {f}"
            );
        }
        let (a, b) = (empty.recover_top_k(16), trained.recover_top_k(16));
        let fa: Vec<u32> = a.iter().map(|e| e.feature).collect();
        let fb: Vec<u32> = b.iter().map(|e| e.feature).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn merge_accepts_heap_free_worker_into_heaped_root() {
        let cfg = WmSketchConfig::new(128, 4).seed(9);
        let mut worker = WmSketch::new(cfg.heap_capacity(0));
        for (x, y) in planted_stream(2000) {
            worker.update(&x, y);
        }
        let mut root = WmSketch::new(cfg);
        root.merge_from(&worker);
        // Worker had no heap, so the root's heap starts empty until
        // candidates are supplied.
        assert!(root.recover_top_k(4).is_empty());
        let cands: Vec<u32> = (0..600).collect();
        root.rebuild_top_k(&cands);
        let top: Vec<u32> = root.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
        assert!(root.estimate(3).to_bits() == worker.estimate(3).to_bits());
    }

    #[test]
    fn rebuild_top_k_is_candidate_order_insensitive() {
        let cfg = WmSketchConfig::new(128, 4).heap_capacity(8).seed(2);
        let mut wm = WmSketch::new(cfg);
        for (x, y) in planted_stream(1500) {
            wm.update(&x, y);
        }
        let mut fwd = wm.clone();
        let mut rev = wm.clone();
        let cands: Vec<u32> = (0..600).collect();
        let rcands: Vec<u32> = (0..600).rev().collect();
        fwd.rebuild_top_k(&cands);
        rev.rebuild_top_k(&rcands);
        let a: Vec<WeightEntry> = fwd.recover_top_k(8);
        let b: Vec<WeightEntry> = rev.recover_top_k(8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.feature, y.feature);
            assert!(x.weight.to_bits() == y.weight.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_mismatched_seed() {
        let mut a = WmSketch::new(WmSketchConfig::new(64, 2).seed(1));
        let b = WmSketch::new(WmSketchConfig::new(64, 2).seed(2));
        a.merge_from(&b);
    }

    #[test]
    fn snapshot_round_trip_preserves_full_state() {
        let cfg = WmSketchConfig::new(128, 5)
            .lambda(1e-5)
            .seed(21)
            .hash_family(HashFamilyKind::Polynomial(4));
        let mut wm = WmSketch::new(cfg);
        for (x, y) in planted_stream(1500) {
            wm.update(&x, y);
        }
        let bytes = wm.to_snapshot_bytes();
        let mut back = WmSketch::from_snapshot_bytes(&bytes).unwrap();
        assert!(back.merge_compatible(&wm) && wm.merge_compatible(&back));
        assert_eq!(back.examples_seen(), wm.examples_seen());
        assert_eq!(back.to_snapshot_bytes(), bytes);
        for f in 0..600u32 {
            assert!(
                back.estimate(f).to_bits() == wm.estimate(f).to_bits(),
                "{f}"
            );
        }
        let (a, b) = (back.recover_top_k(16), wm.recover_top_k(16));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.feature, y.feature);
            assert!(x.weight.to_bits() == y.weight.to_bits());
        }
        // The decoded model keeps evolving identically: same margins and
        // estimates after further training (the heap is passive, so cells
        // and clock fully determine the estimates).
        for (x, y) in planted_stream(500) {
            back.update(&x, y);
            wm.update(&x, y);
        }
        for f in 0..600u32 {
            assert!(
                back.estimate(f).to_bits() == wm.estimate(f).to_bits(),
                "{f}"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_heap_free() {
        let mut wm = WmSketch::new(WmSketchConfig::new(64, 3).heap_capacity(0).seed(2));
        for (x, y) in planted_stream(300) {
            wm.update(&x, y);
        }
        let back = WmSketch::from_snapshot_bytes(&wm.to_snapshot_bytes()).unwrap();
        assert!(back.recover_top_k(4).is_empty());
        assert!(back.estimate(3).to_bits() == wm.estimate(3).to_bits());
    }

    #[test]
    fn snapshot_merges_like_the_original() {
        // A decoded snapshot must be a drop-in peer for merging: shipping
        // b's snapshot and merging equals merging b directly.
        let cfg = WmSketchConfig::new(128, 4).seed(5);
        let mut a1 = WmSketch::new(cfg);
        let mut a2 = WmSketch::new(cfg);
        let mut b = WmSketch::new(cfg);
        for (i, (x, y)) in planted_stream(1200).enumerate() {
            if i % 2 == 0 {
                a1.update(&x, y);
                a2.update(&x, y);
            } else {
                b.update(&x, y);
            }
        }
        let shipped = WmSketch::from_snapshot_bytes(&b.to_snapshot_bytes()).unwrap();
        a1.merge_from(&b);
        a2.merge_from(&shipped);
        for f in 0..600u32 {
            assert!(a1.estimate(f).to_bits() == a2.estimate(f).to_bits(), "{f}");
        }
    }

    #[test]
    fn snapshot_rejects_capacity_mismatch_and_truncation() {
        let mut wm = WmSketch::new(WmSketchConfig::new(32, 2).seed(1));
        for (x, y) in planted_stream(50) {
            wm.update(&x, y);
        }
        let bytes = wm.to_snapshot_bytes();
        // Every strict prefix must fail with a typed error, not a panic.
        for n in 0..bytes.len() {
            assert!(
                WmSketch::from_snapshot_bytes(&bytes[..n]).is_err(),
                "prefix {n} decoded"
            );
        }
        // Appending junk shifts the CRC footer window: ChecksumMismatch.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            WmSketch::from_snapshot_bytes(&long),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rebuild_top_k_unions_current_heap_features() {
        // Features already tracked survive a rebuild whose candidate list
        // does not mention them (they out-rank the candidates).
        let mut wm = WmSketch::new(WmSketchConfig::new(256, 4).lambda(1e-5).seed(3));
        for (x, y) in planted_stream(3000) {
            wm.update(&x, y);
        }
        wm.rebuild_top_k(&[700, 701]); // untrained features, estimate ≈ 0
        let top: Vec<u32> = wm.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
    }

    #[test]
    fn memory_accounting_matches_budget_helper() {
        let cfg = WmSketchConfig::new(128, 14).heap_capacity(128);
        // Table 2's 8 KB WM row: |S|=128, width 128, depth 14.
        assert_eq!(cfg.memory_bytes(), 128 * 8 + 128 * 14 * 4);
        assert!(cfg.memory_bytes() <= 8 * 1024);
    }

    #[test]
    fn with_budget_bytes_fits_budget() {
        for budget in [2048usize, 4096, 8192, 16384, 32768] {
            let cfg = WmSketchConfig::with_budget_bytes(budget);
            assert!(cfg.memory_bytes() <= budget, "budget {budget}");
        }
    }
}
