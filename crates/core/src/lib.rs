//! The paper's primary contribution: the **Weight-Median Sketch** and
//! **Active-Set Weight-Median Sketch** (Tai, Sharan, Bailis & Valiant,
//! *Sketching Linear Classifiers over Data Streams*, SIGMOD 2018), together
//! with every memory-budgeted baseline the paper evaluates against and the
//! §7.1 memory cost model that makes the comparisons fair.
//!
//! | Paper name | Type here |
//! |---|---|
//! | WM-Sketch (Algorithm 1) | [`WmSketch`] |
//! | AWM-Sketch (Algorithm 2) | [`AwmSketch`] |
//! | Simple Truncation (Algorithm 3, "Trun") | [`SimpleTruncation`] |
//! | Probabilistic Truncation (Algorithm 4, "PTrun") | [`ProbabilisticTruncation`] |
//! | Space Saving Frequent ("SS") | [`SpaceSavingClassifier`] |
//! | Count-Min Frequent Features ("CM-FF") | [`CountMinClassifier`] |
//! | Feature Hashing ("Hash") | re-exported [`FeatureHashingClassifier`] |
//! | Logistic Regression ("LR", unconstrained) | re-exported [`LogisticRegression`] |
//!
//! All learners implement [`OnlineLearner`] + [`WeightEstimator`], and all
//! except feature hashing implement [`TopKRecovery`]; the experiment
//! harnesses are written against those traits.
//!
//! Beyond the paper's method matrix, [`ShardedLearner`] (module
//! [`sharded`]) scales any [`MergeableLearner`] across a worker pool with
//! exact linearity-backed merges — see the module docs for the
//! deferred-heap-maintenance design.

#![warn(missing_docs)]

pub mod awm;
pub mod budget;
pub(crate) mod delta;
pub mod dyn_learner;
pub mod frequent;
pub mod multiclass;
pub mod sharded;
pub mod theory;
pub mod truncation;
pub mod wm;

pub use awm::{AwmSketch, AwmSketchConfig};
pub use budget::{
    awm_bytes, cm_classifier_bytes, enumerate_awm_configs, enumerate_wm_configs,
    feature_hashing_table_size, ptrun_capacity, spacesaving_capacity, trun_capacity, wm_bytes,
    BudgetedConfig, BYTES_PER_UNIT,
};
pub use dyn_learner::{
    build_sharded_any, build_sharded_wm_deferred, decode_any_learner, REGISTERED_LEARNER_KINDS,
};
pub use frequent::{
    CountMinClassifier, CountMinClassifierConfig, SpaceSavingClassifier,
    SpaceSavingClassifierConfig,
};
pub use multiclass::{MulticlassAwmSketch, MulticlassConfig, MAX_MULTICLASS_CLASSES};
pub use sharded::{sharded_awm, sharded_wm, ShardedLearner, ShardedLearnerConfig};
pub use theory::GuaranteeParams;
pub use truncation::{ProbabilisticTruncation, SimpleTruncation, TruncationConfig};
pub use wm::{WmSketch, WmSketchConfig, MAX_HEAP_CAPACITY};

// Re-exports so downstream users need only this crate for the full method
// matrix.
pub use wmsketch_hashing::codec::{CodecError, SnapshotCodec};
pub use wmsketch_learn::{
    DynLearner, FeatureHashingClassifier, FeatureHashingConfig, Label, LabelDomain,
    LogisticRegression, LogisticRegressionConfig, MergeableLearner, OnlineLearner, SparseVector,
    TopKRecovery, WeightEntry, WeightEstimator,
};
