//! Parallel sharded training with linearity-backed merges.
//!
//! [`ShardedLearner`] hash-partitions the example stream across `N` worker
//! replicas of a [`MergeableLearner`] and periodically merges them into a
//! queryable **root** model. Because the WM-Sketch is a *linear* sketch
//! (the turnstile/linear-sketching equivalence of Kallaugher & Price —
//! see PAPERS.md), merging worker sketches is cell-wise addition and the
//! merged sketch is exactly the sketch of the combined gradient streams;
//! no approximation is introduced by the split.
//!
//! # Architecture
//!
//! * **Routing** is a deterministic hash of the example's arrival index,
//!   so the partition — and therefore every model state — is independent
//!   of thread scheduling. Repeated runs produce bit-identical results.
//! * **Workers** run on a [`std::thread::scope`]-based pool inside
//!   [`OnlineLearner::update_batch`] (no external thread-pool crates).
//!   Each worker learner owns its `CoordPlan`/median scratch, so the hot
//!   loop is allocation-free and shares no state across threads.
//! * **Deferred heap maintenance.** Worker WM-Sketches run *heap-free*:
//!   the per-update median re-estimation that feeds the passive top-K heap
//!   — the dominant non-hash cost at the paper's 8 KB Figure-7 shape — is
//!   deferred to merge time. Workers instead track **candidate features**
//!   by accumulated ℓ1 touch mass (`Σ|x_i|`, the heavy-hitter notion
//!   behind the paper's `γ = max‖x‖₁` bound) in a flat-map tracker with
//!   Space-Saving-style floor inheritance (see [`TouchMassTracker`]), and
//!   the merged root re-estimates the candidate union against the merged
//!   cells ([`MergeableLearner::rebuild_top_k`]). This is why sharding
//!   pays even on a single core.
//! * **Queries** ([`OnlineLearner::margin`], [`WeightEstimator`],
//!   [`TopKRecovery`]) are served by the root as of the last merge; call
//!   [`ShardedLearner::sync`] for an up-to-the-example view. With one
//!   shard the learner bypasses the pool entirely and the root is the
//!   live sequential model — bit-identical to unsharded training.
//!
//! Merging *sums* the per-shard models, the natural composition for
//! linear sketches of gradient streams. Each worker advances its own
//! learning-rate clock over its substream, so an `N`-shard model is not
//! numerically identical to sequential training (no parallel SGD is); the
//! planted-signal tests below and in `tests/sharded_golden.rs` pin what
//! is guaranteed: determinism, 1-shard exactness, and recovery quality.

use wmsketch_hashing::{fast_range, splitmix64};
use wmsketch_learn::{
    Label, MergeableLearner, OnlineLearner, SparseVector, TopKRecovery, WeightEntry,
    WeightEstimator,
};

use crate::awm::{AwmSketch, AwmSketchConfig};
use crate::wm::{WmSketch, WmSketchConfig};

/// The shard an arrival index maps to under `partition_seed` with
/// `shards` workers — the single routing formula behind
/// [`ShardedLearner::shard_of`] *and* the batch router's staging loop
/// (which cannot call `shard_of` mid split-borrow). Keeping one copy is
/// load-bearing: the public `shard_of` contract lets external
/// partitioners reproduce internal routing bit for bit, so the two paths
/// must never diverge.
#[inline]
fn shard_for(arrival_index: u64, partition_seed: u64, shards: u64) -> usize {
    fast_range(splitmix64(arrival_index ^ partition_seed), shards) as usize
}

/// Configuration for [`ShardedLearner`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedLearnerConfig {
    /// Number of worker shards. `1` bypasses the pool: updates go straight
    /// to the root learner on the calling thread.
    pub shards: usize,
    /// Candidate features tracked per shard for the root's top-K rebuild
    /// (0 disables tracking — the root's heap then only reflects what
    /// [`MergeableLearner::merge_from`] itself carries over).
    pub candidates_per_shard: usize,
    /// Auto-merge after this many routed examples (0 = merge only on
    /// explicit [`ShardedLearner::sync`] calls).
    pub sync_every: u64,
    /// Seed for the arrival-index partition hash.
    pub partition_seed: u64,
}

impl ShardedLearnerConfig {
    /// `shards` workers with a 128-candidate tracker each and a 8192
    /// example auto-merge cadence.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be nonzero");
        Self {
            shards,
            candidates_per_shard: 128,
            sync_every: 8192,
            partition_seed: 0x5AAD,
        }
    }

    /// Sets the per-shard candidate-tracker capacity.
    #[must_use]
    pub fn candidates_per_shard(mut self, n: usize) -> Self {
        self.candidates_per_shard = n;
        self
    }

    /// Sets the auto-merge cadence (0 = manual sync only).
    #[must_use]
    pub fn sync_every(mut self, n: u64) -> Self {
        self.sync_every = n;
        self
    }

    /// Sets the partition-hash seed.
    #[must_use]
    pub fn partition_seed(mut self, seed: u64) -> Self {
        self.partition_seed = seed;
        self
    }
}

/// Per-shard candidate tracker: exact accumulated ℓ1 touch mass per
/// feature in a flat hash map — one map operation per touched feature,
/// nothing heap-shaped on the hot path.
///
/// The map is compacted to its heaviest half whenever it outgrows a
/// high-water mark (32× the reported candidate count), and the largest
/// mass dropped at any compaction becomes a **floor** inherited by every
/// feature admitted later, exactly as a Space-Saving newcomer inherits
/// the minimum counter. The floor is what rules out starvation: a feature
/// that turns heavy only late in the stream re-enters at the floor and
/// overtakes the incumbents as its true mass accrues, instead of
/// restarting from zero below an ever-rising cut line. (A plain
/// keep-the-top-K tracker has exactly that failure; a real Space-Saving
/// summary fixes it too but pays ~20 position-map writes per tail-feature
/// eviction at capacity, which measured 2× slower end to end.)
#[derive(Clone)]
struct TouchMassTracker {
    mass: wmsketch_hashing::FastHashMap<u32, f64>,
    /// Candidates reported to the root rebuild.
    capacity: usize,
    /// Compaction trigger for the map's size.
    high_water: usize,
    /// Mass inherited by newly-admitted features (max mass ever dropped).
    floor: f64,
}

impl TouchMassTracker {
    fn new(capacity: usize) -> Self {
        // The high-water mark trades memory for churn: it is sized so that
        // a typical sync interval's distinct-feature set (tens of
        // thousands) fits without ever compacting — ~1 MB per shard at the
        // default — because each compaction pays O(len) and every dropped
        // feature that returns re-admits toward the next one.
        Self::with_high_water(capacity, capacity.saturating_mul(512).max(1 << 16))
    }

    fn with_high_water(capacity: usize, high_water: usize) -> Self {
        Self {
            mass: wmsketch_hashing::FastHashMap::default(),
            capacity,
            high_water,
            floor: 0.0,
        }
    }

    /// Adds `m` to `feature`'s accumulated touch mass.
    #[inline]
    fn record(&mut self, feature: u32, m: f64) {
        let floor = self.floor;
        *self.mass.entry(feature).or_insert(floor) += m;
        if self.mass.len() > self.high_water {
            self.compact();
        }
    }

    /// Keeps the heaviest half of the map and raises the admission floor
    /// to the largest mass dropped. O(len) selection, not a sort; the kept
    /// *set* is uniquely determined by the (mass desc, id asc) total
    /// order, so compaction is deterministic even though selection leaves
    /// the two partitions internally unordered.
    #[cold]
    fn compact(&mut self) {
        let keep = self.high_water / 2;
        let mut entries: Vec<(u32, f64)> = self.mass.drain().collect();
        let cmp = |a: &(u32, f64), b: &(u32, f64)| {
            b.1.partial_cmp(&a.1).expect("NaN mass").then(a.0.cmp(&b.0))
        };
        let (_, &mut (_, dropped), _) = entries.select_nth_unstable_by(keep, cmp);
        self.floor = self.floor.max(dropped);
        entries.truncate(keep);
        self.mass.extend(entries);
    }

    /// The `capacity` heaviest features, in unspecified order (the sync
    /// path sorts the cross-shard union anyway). O(len) selection: the
    /// reported *set* is uniquely determined by the (mass desc, id asc)
    /// total order, so this is deterministic despite the unstable
    /// partition.
    fn candidates(&self) -> Vec<u32> {
        let mut entries: Vec<(u32, f64)> = self.mass.iter().map(|(&f, &m)| (f, m)).collect();
        if entries.len() > self.capacity {
            entries.select_nth_unstable_by(self.capacity - 1, |a, b| {
                b.1.partial_cmp(&a.1).expect("NaN mass").then(a.0.cmp(&b.0))
            });
            entries.truncate(self.capacity);
        }
        entries.into_iter().map(|(f, _)| f).collect()
    }
}

/// One worker: a learner replica plus its candidate tracker.
struct Shard<L> {
    learner: L,
    /// `Σ|x_i|` touch-mass tracker; its heaviest features are offered to
    /// the root's heap rebuild at merge time. `None` when tracking is
    /// disabled.
    candidates: Option<TouchMassTracker>,
}

impl<L: OnlineLearner> Shard<L> {
    /// Applies one example and records its features' touch mass.
    fn apply(&mut self, x: &SparseVector, y: Label) {
        self.learner.update(x, y);
        if let Some(tracker) = &mut self.candidates {
            for (i, xi) in x.iter() {
                tracker.record(i, xi.abs());
            }
        }
    }
}

/// A sharded wrapper around any [`MergeableLearner`] (see module docs).
pub struct ShardedLearner<L> {
    cfg: ShardedLearnerConfig,
    /// Pristine zero-state learner; every merge starts from a clone of it
    /// so repeated syncs never double-count shard state.
    template: L,
    /// The queryable merged model (live model in 1-shard bypass mode).
    root: L,
    /// Worker replicas; empty in bypass mode.
    shards: Vec<Shard<L>>,
    /// Arrival counter: total examples routed, and the partition-hash key
    /// for the next example.
    routed: u64,
    /// Sum of the clocks of every peer model folded in via
    /// [`ShardedLearner::absorb`]. Kept separate from `routed` on purpose:
    /// `examples_seen` reports locally routed examples only, while
    /// [`ShardedLearner::merged_clock`] — the learning-rate clock the root
    /// reaches once synced — is `routed + absorbed`.
    absorbed: u64,
    /// Examples routed since the last merge.
    since_sync: u64,
    /// Per-shard staging for batch routing: `route_scratch[s]` holds the
    /// chunk indices assigned to shard `s`. Instance-owned so steady-state
    /// batch routing is allocation-free — decoded examples flow from the
    /// caller's buffers straight through [`ShardedLearner::shard_of`] into
    /// the workers without a per-batch staged-vector allocation.
    route_scratch: Vec<Vec<usize>>,
}

impl<L: std::fmt::Debug> std::fmt::Debug for ShardedLearner<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLearner")
            .field("shards", &self.cfg.shards.max(1))
            .field("routed", &self.routed)
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

impl<L: MergeableLearner + Clone> ShardedLearner<L> {
    /// Builds a sharded learner from a root template and a worker
    /// template.
    ///
    /// The root serves queries (and, for sketched learners, typically
    /// carries the recovery heap); workers are clones of
    /// `worker_template`, which may be a cheaper configuration of the same
    /// sketch — e.g. heap-free WM workers (see [`sharded_wm`]). Both
    /// templates must be merge-compatible.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0`, if the templates are not
    /// merge-compatible, or if either template has already seen examples.
    #[must_use]
    pub fn new(cfg: ShardedLearnerConfig, root_template: L, worker_template: L) -> Self {
        assert!(cfg.shards > 0, "shard count must be nonzero");
        assert!(
            root_template.merge_compatible(&worker_template),
            "root and worker templates are not merge-compatible"
        );
        assert!(
            root_template.examples_seen() == 0 && worker_template.examples_seen() == 0,
            "sharded templates must be untrained"
        );
        let shards = if cfg.shards == 1 {
            Vec::new()
        } else {
            (0..cfg.shards)
                .map(|_| Shard {
                    learner: worker_template.clone(),
                    candidates: (cfg.candidates_per_shard > 0)
                        .then(|| TouchMassTracker::new(cfg.candidates_per_shard)),
                })
                .collect()
        };
        let route_scratch = vec![Vec::new(); shards.len()];
        Self {
            cfg,
            root: root_template.clone(),
            template: root_template,
            shards,
            routed: 0,
            absorbed: 0,
            since_sync: 0,
            route_scratch,
        }
    }

    /// Number of worker shards (1 in bypass mode).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.cfg.shards
    }

    /// The queryable root model, as of the last [`ShardedLearner::sync`]
    /// (always current in 1-shard bypass mode).
    #[must_use]
    pub fn root(&self) -> &L {
        &self.root
    }

    /// Mutable access to the root model, for callers that drive the
    /// root's own encoding machinery (e.g. delta snapshots) after a
    /// [`ShardedLearner::sync`].
    pub(crate) fn root_mut(&mut self) -> &mut L {
        &mut self.root
    }

    /// The learning-rate clock the root model reaches once synced: every
    /// locally routed example plus the clocks of every absorbed peer.
    ///
    /// This is the pool's *replication clock* — unlike
    /// [`OnlineLearner::examples_seen`] (local examples only, the
    /// documented counting semantics of [`ShardedLearner::absorb`]) it
    /// advances when peer state is folded in, and unlike
    /// `self.root().examples_seen()` it does not go stale between syncs.
    #[must_use]
    pub fn merged_clock(&self) -> u64 {
        self.routed + self.absorbed
    }

    /// The worker replicas (empty in bypass mode).
    pub fn shard_learners(&self) -> impl Iterator<Item = &L> {
        self.shards.iter().map(|s| &s.learner)
    }

    /// Upper bound in bytes on the per-shard candidate trackers' state:
    /// one (feature id, mass) entry per map slot at the compaction
    /// high-water mark, under the paper's §7.1 4-byte-unit accounting.
    /// Zero in bypass mode or with tracking disabled. The trackers are the
    /// dominant replicated memory of a sharded deployment — far larger
    /// than the sketch replicas — so memory accounting that includes the
    /// workers must include this too.
    #[must_use]
    pub fn tracker_memory_bound_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.candidates.as_ref())
            .map(|t| t.high_water * 2 * crate::budget::BYTES_PER_UNIT)
            .sum()
    }

    /// Bytes the candidate trackers hold *right now*: allocated map
    /// capacity, not the high-water bound. This is what a memory
    /// governor should charge — the bound above can exceed the actual
    /// footprint by orders of magnitude on a young pool whose maps have
    /// not grown toward compaction yet.
    #[must_use]
    pub fn tracker_resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.candidates.as_ref())
            .map(|t| t.mass.capacity() * (std::mem::size_of::<(u32, f64)>() + 1))
            .sum()
    }

    /// Whether the root reflects every routed example.
    #[must_use]
    pub fn is_synced(&self) -> bool {
        self.shards.is_empty() || self.since_sync == 0
    }

    /// The shard the `index`-th routed example belongs to, for the
    /// configured shard count. Public so external partitioners — e.g. a
    /// client splitting one stream across several ingest services — can
    /// reproduce the exact routing a single sharded learner would apply,
    /// making distributed ingest bit-identical to local sharded training
    /// after the snapshots are merged.
    #[must_use]
    pub fn shard_of(&self, arrival_index: u64) -> usize {
        shard_for(
            arrival_index,
            self.cfg.partition_seed,
            self.cfg.shards as u64,
        )
    }

    /// The shard the `index`-th routed example belongs to.
    fn route(&self, index: u64) -> usize {
        debug_assert_eq!(self.shards.len(), self.cfg.shards);
        self.shard_of(index)
    }

    /// Folds a peer model — typically a decoded snapshot shipped from
    /// another node — into this learner (exact by sketch linearity).
    ///
    /// The peer joins the *sync base*: it is merged into the queryable
    /// root immediately and into the template so that every future
    /// [`ShardedLearner::sync`] (which rebuilds the root from the template
    /// plus the live workers) retains it. Peer examples are not added to
    /// [`OnlineLearner::examples_seen`], which counts locally routed
    /// examples only; the peer's clock instead accrues to
    /// [`ShardedLearner::merged_clock`], the pool's replication clock,
    /// which the root's own clock matches after the next sync.
    ///
    /// # Panics
    /// Panics if `peer` is not merge-compatible with this learner's
    /// models.
    pub fn absorb(&mut self, peer: &L) {
        assert!(
            self.template.merge_compatible(peer),
            "absorbing a merge-incompatible peer model"
        );
        self.absorbed += peer.examples_seen();
        if !self.shards.is_empty() {
            self.template.merge_from(peer);
        }
        self.root.merge_from(peer);
    }

    /// Reinstates `peer` — a decoded checkpoint of this pool's own root —
    /// as the pool's state, the durability counterpart of
    /// [`ShardedLearner::absorb`].
    ///
    /// Where absorb *folds* foreign state in (normalizing the peer's
    /// scale into logical weights and accruing its clock to
    /// [`ShardedLearner::merged_clock`]), restore treats the snapshot as
    /// this pool's own interrupted life: the restored clock becomes the
    /// *routed* counter, so [`OnlineLearner::examples_seen`] reports the
    /// recovered examples and routing resumes at
    /// [`ShardedLearner::shard_of`] of the restored clock — exactly where
    /// the checkpointed pool would have sent its next example.
    ///
    /// In bypass mode (no workers) the root **is** the live learner and
    /// adoption is bit-exact — pre-scale cells, scale factor, update
    /// clock, top-K heap — so resumed training follows the exact
    /// trajectory the checkpoint interrupted. A worker pool's root
    /// snapshot cannot capture the workers' in-flight trajectories, so
    /// there the checkpoint folds into the sync base (aggregate-exact,
    /// like absorb) and only the clock accounting differs.
    ///
    /// Restore assumes fresh workers (a freshly built pool, as the serve
    /// layer's recovery constructs): worker state already reflected in
    /// the checkpointed root would otherwise be double-counted at the
    /// next sync.
    ///
    /// # Panics
    /// Panics if `peer` is not merge-compatible with this learner's
    /// models.
    pub fn restore(&mut self, peer: L) {
        assert!(
            self.template.merge_compatible(&peer),
            "restoring a merge-incompatible checkpoint"
        );
        self.routed = peer.examples_seen();
        self.absorbed = 0;
        if self.shards.is_empty() {
            self.root = peer;
        } else {
            self.template.merge_from(&peer);
            self.root.merge_from(&peer);
        }
    }

    /// Rebuilds the root from the workers: clone the pristine template,
    /// merge every shard in index order (exact by sketch linearity), then
    /// re-estimate the union of tracked candidates into the root's top-K
    /// state. Deterministic: no step depends on thread scheduling. A no-op
    /// when the root is already fresh.
    pub fn sync(&mut self) {
        if self.is_synced() {
            return;
        }
        self.since_sync = 0;
        let mut root = self.template.clone();
        for shard in &self.shards {
            root.merge_from(&shard.learner);
        }
        let mut candidates: Vec<u32> = self
            .shards
            .iter()
            .filter_map(|s| s.candidates.as_ref())
            .flat_map(TouchMassTracker::candidates)
            .collect();
        if !candidates.is_empty() {
            candidates.sort_unstable();
            candidates.dedup();
            root.rebuild_top_k(&candidates);
        }
        // The rebuilt root starts with delta tracking off; inherit the
        // outgoing root's change stamps (where the stored bits agree) so a
        // sync between two delta ships does not degrade every delta to a
        // full snapshot.
        root.inherit_delta_stamps(&self.root);
        self.root = root;
    }

    fn maybe_auto_sync(&mut self) {
        if self.cfg.sync_every > 0 && self.since_sync >= self.cfg.sync_every {
            self.sync();
        }
    }
}

impl<L: MergeableLearner + Clone + Send> ShardedLearner<L> {
    /// Partitions one chunk by arrival index and runs every busy worker
    /// on its own scoped thread (inline when only one worker has work).
    /// Does not touch the routing counters; the caller advances them.
    ///
    /// Staging lives in the instance-owned `route_scratch` buffers, so
    /// steady-state routing allocates nothing: a server connection's
    /// decoded examples go from its scratch buffers straight into the
    /// workers (see `tests/alloc_free.rs`).
    fn run_chunk(&mut self, chunk: &[(SparseVector, Label)]) {
        debug_assert_eq!(self.route_scratch.len(), self.shards.len());
        let (seed, n) = (self.cfg.partition_seed, self.cfg.shards as u64);
        let base = self.routed;
        for idxs in &mut self.route_scratch {
            idxs.clear();
        }
        for idx in 0..chunk.len() {
            // `shard_for`, not `self.shard_of`: the split borrow (scratch
            // is &mut self) needs the hash inputs copied out first.
            let shard = shard_for(base + idx as u64, seed, n);
            self.route_scratch[shard].push(idx);
        }
        let Self {
            shards,
            route_scratch,
            ..
        } = self;
        let busy = route_scratch.iter().filter(|a| !a.is_empty()).count();
        if busy <= 1 {
            // One worker has all the work: skip thread spawns.
            for (shard, idxs) in shards.iter_mut().zip(route_scratch.iter()) {
                for &i in idxs {
                    let (x, y) = &chunk[i];
                    shard.apply(x, *y);
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (shard, idxs) in shards.iter_mut().zip(route_scratch.iter()) {
                    if idxs.is_empty() {
                        continue;
                    }
                    scope.spawn(move || {
                        for &i in idxs {
                            let (x, y) = &chunk[i];
                            shard.apply(x, *y);
                        }
                    });
                }
            });
        }
    }
}

impl<L: MergeableLearner + Clone + Send> OnlineLearner for ShardedLearner<L> {
    /// The root's margin, as of the last sync.
    fn margin(&self, x: &SparseVector) -> f64 {
        self.root.margin(x)
    }

    fn update(&mut self, x: &SparseVector, y: Label) {
        if self.shards.is_empty() {
            self.root.update(x, y);
            self.routed += 1;
            return;
        }
        let shard = self.route(self.routed);
        self.shards[shard].apply(x, y);
        self.routed += 1;
        self.since_sync += 1;
        self.maybe_auto_sync();
    }

    /// Routes the batch across the worker pool.
    ///
    /// Each example's shard is fixed by its arrival index, every worker
    /// consumes its sub-stream in order on its own scoped thread, and the
    /// result is therefore independent of how the OS schedules the
    /// threads. Batches larger than the remaining auto-merge budget are
    /// processed in sub-batches with a merge between them, so the
    /// documented staleness bound (`sync_every`) holds regardless of
    /// batch size.
    fn update_batch(&mut self, batch: &[(SparseVector, Label)]) {
        if self.shards.is_empty() {
            self.root.update_batch(batch);
            self.routed += batch.len() as u64;
            return;
        }
        let mut rest = batch;
        while !rest.is_empty() {
            let take = if self.cfg.sync_every == 0 {
                rest.len()
            } else {
                // since_sync < sync_every between chunks: maybe_auto_sync
                // resets it whenever the threshold is reached.
                ((self.cfg.sync_every - self.since_sync) as usize).min(rest.len())
            };
            let (chunk, tail) = rest.split_at(take);
            self.run_chunk(chunk);
            self.routed += chunk.len() as u64;
            self.since_sync += chunk.len() as u64;
            self.maybe_auto_sync();
            rest = tail;
        }
    }

    /// Total examples routed (across all shards, merged or not).
    fn examples_seen(&self) -> u64 {
        self.routed
    }
}

impl<L: MergeableLearner + Clone + Send + WeightEstimator> WeightEstimator for ShardedLearner<L> {
    /// The root's estimate, as of the last sync.
    fn estimate(&self, feature: u32) -> f64 {
        self.root.estimate(feature)
    }
}

impl<L: MergeableLearner + Clone + Send + TopKRecovery> TopKRecovery for ShardedLearner<L> {
    /// The root's top-K, as of the last sync.
    fn recover_top_k(&self, k: usize) -> Vec<WeightEntry> {
        self.root.recover_top_k(k)
    }
}

/// A sharded WM-Sketch with deferred heap maintenance: the root carries
/// the query heap, the workers run heap-free (their per-update median
/// re-estimation deferred to merge time) and track top-K candidates by
/// accumulated ℓ1 touch mass. With `cfg.shards == 1` this is exactly the
/// sequential fused pipeline.
///
/// `cfg.candidates_per_shard` is honored verbatim (0 disables tracking
/// and leaves the root's heap empty); for full top-K recovery keep it at
/// least `wm.heap_capacity` — the [`ShardedLearnerConfig::new`] default
/// of 128 matches the WM-Sketch's default heap.
#[must_use]
pub fn sharded_wm(wm: WmSketchConfig, cfg: ShardedLearnerConfig) -> ShardedLearner<WmSketch> {
    let mut worker_cfg = wm;
    worker_cfg.heap_capacity = 0;
    ShardedLearner::new(cfg, WmSketch::new(wm), WmSketch::new(worker_cfg))
}

/// A sharded AWM-Sketch. The active set is integral to the model (exact
/// weights, not a passive index), so workers run the full configuration
/// and the merge itself rebuilds the root's active set; no candidate
/// tracking is needed.
#[must_use]
pub fn sharded_awm(awm: AwmSketchConfig, cfg: ShardedLearnerConfig) -> ShardedLearner<AwmSketch> {
    let cfg = cfg.candidates_per_shard(0);
    ShardedLearner::new(cfg, AwmSketch::new(awm), AwmSketch::new(awm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_stream(n: usize) -> Vec<(SparseVector, Label)> {
        (0..n)
            .map(|t| {
                let noise = 100 + (t * 17 % 400) as u32;
                if t % 2 == 0 {
                    (SparseVector::from_pairs(&[(3, 1.0), (noise, 0.5)]), 1)
                } else {
                    (SparseVector::from_pairs(&[(9, 1.0), (noise, 0.5)]), -1)
                }
            })
            .collect()
    }

    #[test]
    fn four_shard_wm_recovers_planted_features() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(256, 4).lambda(1e-5).seed(3),
            ShardedLearnerConfig::new(4),
        );
        sharded.update_batch(&planted_stream(4000));
        sharded.sync();
        assert_eq!(sharded.examples_seen(), 4000);
        assert!(sharded.estimate(3) > 0.2, "w(3) = {}", sharded.estimate(3));
        assert!(sharded.estimate(9) < -0.2, "w(9) = {}", sharded.estimate(9));
        let top: Vec<u32> = sharded.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
    }

    #[test]
    fn four_shard_awm_recovers_planted_features() {
        let mut sharded = sharded_awm(
            AwmSketchConfig::new(16, 256).lambda(1e-5).seed(1),
            ShardedLearnerConfig::new(4),
        );
        sharded.update_batch(&planted_stream(4000));
        sharded.sync();
        assert!(sharded.estimate(3) > 0.2);
        assert!(sharded.estimate(9) < -0.2);
        assert!(sharded.root().in_active_set(3));
        assert!(sharded.root().in_active_set(9));
    }

    #[test]
    fn single_example_updates_match_batched_routing() {
        // The arrival-index router must assign identically whether
        // examples arrive one at a time or in slices.
        let data = planted_stream(1000);
        let cfg = WmSketchConfig::new(128, 4).seed(7);
        let scfg = ShardedLearnerConfig::new(3).sync_every(0);
        let mut one = sharded_wm(cfg, scfg);
        let mut many = sharded_wm(cfg, scfg);
        for (x, y) in &data {
            one.update(x, *y);
        }
        for chunk in data.chunks(61) {
            many.update_batch(chunk);
        }
        one.sync();
        many.sync();
        for f in 0..600u32 {
            assert!(
                one.estimate(f).to_bits() == many.estimate(f).to_bits(),
                "feature {f}"
            );
        }
    }

    #[test]
    fn auto_sync_keeps_root_fresh() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 2).seed(1),
            ShardedLearnerConfig::new(2).sync_every(256),
        );
        let data = planted_stream(1024);
        for (x, y) in &data {
            sharded.update(x, *y);
        }
        // 1024 = 4 × 256: the threshold fired on the last example.
        assert!(sharded.is_synced());
        assert!(sharded.estimate(3) != 0.0);
    }

    #[test]
    fn large_batches_merge_at_the_sync_cadence() {
        // One oversized batch must not defer merging to its end: the
        // documented bound says the root lags by at most sync_every
        // examples, so mid-batch merges fire at the cadence boundaries.
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 2).seed(6),
            ShardedLearnerConfig::new(2).sync_every(256),
        );
        sharded.update_batch(&planted_stream(1000));
        // 1000 = 3 x 256 + 232: three mid-batch merges happened and only
        // the 232-example tail is unmerged.
        assert!(!sharded.is_synced());
        assert_eq!(sharded.root().examples_seen(), 768);
        assert!(sharded.estimate(3) != 0.0);
    }

    #[test]
    fn unsynced_root_is_stale_until_sync() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 2).seed(1),
            ShardedLearnerConfig::new(2).sync_every(0),
        );
        sharded.update_batch(&planted_stream(500));
        assert!(!sharded.is_synced());
        assert_eq!(sharded.estimate(3), 0.0);
        sharded.sync();
        assert!(sharded.is_synced());
        assert!(sharded.estimate(3) != 0.0);
    }

    #[test]
    fn one_shard_bypass_has_no_workers_and_is_always_synced() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 2).seed(4),
            ShardedLearnerConfig::new(1),
        );
        sharded.update_batch(&planted_stream(300));
        assert_eq!(sharded.shard_learners().count(), 0);
        assert!(sharded.is_synced());
        assert_eq!(sharded.root().examples_seen(), 300);
    }

    #[test]
    fn repeated_syncs_do_not_double_count() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 4).seed(2),
            ShardedLearnerConfig::new(2).sync_every(0),
        );
        sharded.update_batch(&planted_stream(800));
        sharded.sync();
        let first: Vec<f64> = (0..50u32).map(|f| sharded.estimate(f)).collect();
        sharded.sync();
        sharded.sync();
        let third: Vec<f64> = (0..50u32).map(|f| sharded.estimate(f)).collect();
        assert_eq!(first, third);
    }

    #[test]
    fn late_arriving_heavy_feature_enters_top_k() {
        // Regression: with a keep-the-top-K candidate tracker, a rejected
        // offer restarted a feature's mass from zero, so a feature that
        // turned heavy *after* the trackers saturated could never become a
        // candidate and the root's top-K missed the heaviest weight
        // forever. Space-Saving admission inherits the minimum counter, so
        // the late feature must surface.
        let mut sharded = sharded_wm(
            WmSketchConfig::new(512, 2).lambda(0.0).seed(5),
            ShardedLearnerConfig::new(2)
                .candidates_per_shard(16)
                .sync_every(0),
        );
        // Saturate both shards' trackers with 16 moderate features.
        let mut batch = Vec::new();
        for round in 0..40 {
            for f in 20..36u32 {
                batch.push((
                    SparseVector::one_hot(f, 2.0),
                    if (f + round) % 2 == 0 { 1 } else { -1 },
                ));
            }
        }
        // Then feature 7 arrives and dominates the rest of the stream.
        for t in 0..2000 {
            batch.push((
                SparseVector::one_hot(7, 1.0),
                if t % 4 == 0 { -1 } else { 1 },
            ));
        }
        sharded.update_batch(&batch);
        sharded.sync();
        let top: Vec<u32> = sharded.recover_top_k(4).iter().map(|e| e.feature).collect();
        assert!(
            top.contains(&7),
            "late heavy feature starved out of top-K: {top:?} (w7 = {})",
            sharded.estimate(7)
        );
    }

    #[test]
    fn touch_mass_tracker_compacts_and_inherits_floor() {
        let mut t = TouchMassTracker::with_high_water(4, 1024);
        // Overflow the high-water mark with distinct light features plus
        // four heavies.
        for f in 0..1025u32 {
            t.record(f, if f < 4 { 100.0 } else { 1.0 });
        }
        assert!(t.mass.len() <= 1024 / 2 + 1, "map len {}", t.mass.len());
        // Compaction dropped mass-1 features: the floor inherits it.
        assert!(t.floor >= 1.0, "floor {}", t.floor);
        // A brand-new feature enters at the floor, not zero...
        t.record(2000, 1.0);
        assert!(t.mass[&2000] >= 2.0);
        // ...and the heavies survived compaction and lead the candidates.
        let mut top = t.candidates();
        top.sort_unstable();
        assert_eq!(&top, &[0, 1, 2, 3]);
    }

    #[test]
    fn candidates_per_shard_zero_disables_tracking() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(128, 2).seed(3),
            ShardedLearnerConfig::new(2)
                .candidates_per_shard(0)
                .sync_every(0),
        );
        sharded.update_batch(&planted_stream(400));
        sharded.sync();
        // No candidates → the root heap stays empty, but estimates work.
        assert!(sharded.recover_top_k(8).is_empty());
        assert!(sharded.estimate(3) != 0.0);
    }

    #[test]
    fn routing_balances_shards_roughly() {
        let sharded = sharded_wm(
            WmSketchConfig::new(64, 2),
            ShardedLearnerConfig::new(4).sync_every(0),
        );
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[sharded.route(i)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn absorb_survives_later_syncs() {
        // A peer model absorbed between syncs must not be washed away by
        // the next template-clone-and-merge rebuild.
        let cfg = WmSketchConfig::new(128, 4).lambda(1e-5).seed(3);
        let mut peer = WmSketch::new(cfg);
        for (x, y) in planted_stream(2000) {
            peer.update(&x, y);
        }
        let mut sharded = sharded_wm(cfg, ShardedLearnerConfig::new(2).sync_every(0));
        sharded.absorb(&peer);
        assert!(sharded.estimate(3).to_bits() == peer.estimate(3).to_bits());
        sharded.update_batch(&planted_stream(500));
        sharded.sync();
        // Root = peer + both workers; the peer's signal is still there.
        assert!(sharded.estimate(3) > peer.estimate(3) * 0.9);
        assert_eq!(sharded.root().examples_seen(), 2500);
        let top: Vec<u32> = sharded.recover_top_k(2).iter().map(|e| e.feature).collect();
        assert!(top.contains(&3) && top.contains(&9), "top = {top:?}");
    }

    #[test]
    fn absorb_advances_merged_clock_not_examples_seen() {
        // Regression for the replication clock: absorbing a peer advances
        // the root's learning-rate clock, but `examples_seen` (locally
        // routed examples) must not move, and `merged_clock` must report
        // routed + absorbed *without* waiting for the next sync.
        let cfg = WmSketchConfig::new(128, 2).lambda(1e-5).seed(3);
        let mut peer = WmSketch::new(cfg);
        for (x, y) in planted_stream(700) {
            peer.update(&x, y);
        }
        let mut sharded = sharded_wm(cfg, ShardedLearnerConfig::new(2).sync_every(0));
        sharded.update_batch(&planted_stream(300));
        sharded.absorb(&peer);
        assert_eq!(sharded.examples_seen(), 300);
        assert_eq!(sharded.merged_clock(), 1000);
        // Stale root: peer merged in, local examples not yet synced.
        assert_eq!(sharded.root().examples_seen(), 700);
        sharded.sync();
        // Synced root clock agrees with the replication clock.
        assert_eq!(sharded.root().examples_seen(), 1000);
        assert_eq!(sharded.merged_clock(), 1000);
        assert_eq!(sharded.examples_seen(), 300);
    }

    #[test]
    fn absorb_in_bypass_mode_merges_into_live_root() {
        // λ = 0 keeps the scale at 1, so merging into the empty root is
        // exact cell addition and the bit-equality below is well-defined.
        let cfg = WmSketchConfig::new(128, 2).lambda(0.0).seed(7);
        let mut peer = WmSketch::new(cfg);
        for (x, y) in planted_stream(600) {
            peer.update(&x, y);
        }
        let mut sharded = sharded_wm(cfg, ShardedLearnerConfig::new(1));
        sharded.absorb(&peer);
        assert!(sharded.estimate(3).to_bits() == peer.estimate(3).to_bits());
        assert!(sharded.is_synced());
    }

    #[test]
    fn shard_of_matches_internal_routing() {
        let sharded = sharded_wm(
            WmSketchConfig::new(64, 2),
            ShardedLearnerConfig::new(4).sync_every(0),
        );
        for i in 0..5000u64 {
            assert_eq!(sharded.shard_of(i), sharded.route(i));
        }
    }

    #[test]
    #[should_panic(expected = "merge-incompatible")]
    fn absorb_rejects_incompatible_peer() {
        let mut sharded = sharded_wm(
            WmSketchConfig::new(64, 2).seed(1),
            ShardedLearnerConfig::new(2),
        );
        let peer = WmSketch::new(WmSketchConfig::new(64, 2).seed(9));
        sharded.absorb(&peer);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_shards_rejected() {
        let _ = ShardedLearnerConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "merge-compatible")]
    fn incompatible_templates_rejected() {
        let root = WmSketch::new(WmSketchConfig::new(64, 2).seed(1));
        let worker = WmSketch::new(WmSketchConfig::new(64, 2).seed(2));
        let _ = ShardedLearner::new(ShardedLearnerConfig::new(2), root, worker);
    }
}
