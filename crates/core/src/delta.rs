//! Dirty-cell tracking behind the WMS1 **delta snapshot** records.
//!
//! A delta record ships only what changed since a *watermark* clock: the
//! sparse set of sketch cells whose stored bit patterns changed, the
//! (always-shipped, tiny) scalar state, and the top-K heap when it moved.
//! Because sketch updates are state-dependent (the margin feeds the
//! gradient), deltas cannot be additive and stay bit-exact — so a delta
//! *overwrites* raw `f64` bit patterns, and `base + delta` re-encodes
//! bit-identically to a full snapshot of the origin.
//!
//! [`DirtyCells`] is the per-learner tracker making the sparse selection
//! possible: one `u64` last-touched stamp per cell plus a heap stamp.
//! Tracking is **off by default** (zero overhead, zero memory) and is
//! switched on lazily by the first `encode_delta_since` call — which
//! therefore returns a full snapshot, exactly what a peer with no prior
//! state needs anyway.
//!
//! ## Stamp-clock invariant
//!
//! For every cell `i`: `stamps[i] <= c` implies the cell's stored bits
//! now equal its bits at clock `c`, for any `c` at which a snapshot or
//! delta was actually produced. Writers maintain this by stamping with
//! the *post-mutation* clock (`epoch`), set before the writes of each
//! update/merge. Over-stamping (marking an unchanged cell dirty) only
//! costs delta bytes; under-stamping would corrupt replicas, so every
//! mutation that cannot stamp precisely stamps everything — and a
//! mutation that changes state without advancing the clock (merging a
//! zero-clock peer) marks the tracker [`DirtyCells::require_full`], which
//! forces the next delta request to fall back to a full snapshot.

/// Per-cell last-touched stamps for delta-snapshot encoding (see module
/// docs). `Clone` so tracked learners stay clonable; clones carry the
/// tracking state with them.
#[derive(Debug, Clone, Default)]
pub(crate) struct DirtyCells {
    /// One last-touched clock per cell; empty means tracking is off.
    stamps: Vec<u64>,
    /// Last clock at which the top-K heap / active set changed.
    heap_stamp: u64,
    /// The clock value writes stamp with (the post-mutation clock).
    epoch: u64,
    /// When set, [`DirtyCells::set_epoch`] is a no-op: an owning
    /// composite learner (multiclass) drives the epoch with *its* clock,
    /// so one watermark covers every class.
    external_epoch: bool,
    /// State changed without the clock advancing; only a full snapshot
    /// can resynchronize a peer.
    full_required: bool,
}

impl DirtyCells {
    /// A tracker in the off state (the default for fresh and decoded
    /// learners).
    pub(crate) fn off() -> Self {
        Self::default()
    }

    /// Whether tracking is on.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        !self.stamps.is_empty()
    }

    /// Heap bytes the stamp vector owns (zero until tracking is armed).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.stamps.capacity() * std::mem::size_of::<u64>()
    }

    /// (Re)starts tracking over `cells` cells with everything considered
    /// dirty at clock `now` — the state right after shipping a full
    /// snapshot at `now`.
    pub(crate) fn enable(&mut self, cells: usize, now: u64) {
        self.stamps.clear();
        self.stamps.resize(cells, now);
        self.heap_stamp = now;
        self.epoch = now;
        self.full_required = false;
    }

    /// Sets the stamp epoch for the mutations that follow, unless an
    /// owning composite learner drives it externally.
    #[inline]
    pub(crate) fn set_epoch(&mut self, t: u64) {
        if !self.external_epoch {
            self.epoch = t;
        }
    }

    /// Hands epoch control to an owning composite learner: from now on
    /// only [`DirtyCells::force_epoch`] moves the epoch.
    pub(crate) fn force_epoch(&mut self, t: u64) {
        self.external_epoch = true;
        self.epoch = t;
    }

    /// Marks one cell touched at the current epoch.
    #[inline]
    pub(crate) fn touch(&mut self, i: usize) {
        if let Some(s) = self.stamps.get_mut(i) {
            *s = self.epoch;
        }
    }

    /// Marks every cell touched (scale folds, merges).
    #[inline]
    pub(crate) fn touch_all(&mut self) {
        let epoch = self.epoch;
        self.stamps.fill(epoch);
    }

    /// Marks the top-K heap / active set touched.
    #[inline]
    pub(crate) fn touch_heap(&mut self) {
        if self.enabled() {
            self.heap_stamp = self.epoch;
        }
    }

    /// Records a state change that did not advance the clock; the next
    /// delta request must fall back to a full snapshot.
    pub(crate) fn require_full(&mut self) {
        self.full_required = true;
    }

    /// Whether a delta since `since` can be encoded from a learner at
    /// clock `t` (tracking on, no clock-less mutation, watermark not in
    /// the future).
    pub(crate) fn can_delta(&self, since: u64, t: u64) -> bool {
        self.enabled() && !self.full_required && since <= t
    }

    /// The sparse overwrite list: index and raw bit pattern of every
    /// cell touched after `since`.
    pub(crate) fn changed(&self, z: &[f64], since: u64) -> Vec<(u32, u64)> {
        debug_assert_eq!(self.stamps.len(), z.len());
        self.stamps
            .iter()
            .zip(z)
            .enumerate()
            .filter(|(_, (&s, _))| s > since)
            .map(|(i, (_, &v))| (i as u32, v.to_bits()))
            .collect()
    }

    /// Whether the heap / active set was touched after `since`.
    pub(crate) fn heap_dirty(&self, since: u64) -> bool {
        self.heap_stamp > since
    }

    /// Rebuilds tracking for a learner whose cells were reconstructed
    /// from scratch (a sharded root after sync): where the new stored
    /// bits equal the previous root's, the previous stamp is inherited —
    /// so cells untouched across syncs stay clean — and every changed
    /// cell is stamped `now`. No-op (tracking stays off) when the
    /// previous tracker was off.
    pub(crate) fn inherit(&mut self, prev: &Self, new_z: &[f64], prev_z: &[f64], now: u64) {
        if !prev.enabled() || new_z.len() != prev_z.len() {
            return;
        }
        self.stamps.clear();
        self.stamps.extend(
            new_z
                .iter()
                .zip(prev_z)
                .zip(&prev.stamps)
                .map(|((n, p), &s)| if n.to_bits() == p.to_bits() { s } else { now }),
        );
        // The heap is rebuilt wholesale at every sync; treat it as moved.
        self.heap_stamp = now;
        self.epoch = now;
        self.external_epoch = prev.external_epoch;
        self.full_required = prev.full_required;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_is_inert() {
        let mut d = DirtyCells::off();
        assert!(!d.enabled());
        d.set_epoch(5);
        d.touch(3); // no stamps allocated: must not panic
        d.touch_all();
        d.touch_heap();
        assert!(!d.can_delta(0, 10));
    }

    #[test]
    fn stamps_select_only_cells_touched_after_watermark() {
        let mut d = DirtyCells::off();
        d.enable(4, 10);
        let z = [1.0, 2.0, 3.0, 4.0];
        // Everything dirty at enable time relative to an older watermark…
        assert_eq!(d.changed(&z, 9).len(), 4);
        // …and clean at the enable clock.
        assert_eq!(d.changed(&z, 10).len(), 0);
        d.set_epoch(12);
        d.touch(2);
        let changed = d.changed(&z, 10);
        assert_eq!(changed, vec![(2, 3.0f64.to_bits())]);
        assert!(!d.heap_dirty(10));
        d.touch_heap();
        assert!(d.heap_dirty(10));
    }

    #[test]
    fn external_epoch_ignores_internal_set() {
        let mut d = DirtyCells::off();
        d.enable(2, 0);
        d.force_epoch(7);
        d.set_epoch(3); // ignored: the owner drives the epoch
        d.touch(0);
        let z = [1.0, 0.0];
        assert_eq!(d.changed(&z, 6), vec![(0, 1.0f64.to_bits())]);
        assert_eq!(d.changed(&z, 7).len(), 0);
    }

    #[test]
    fn inherit_keeps_stamps_for_bit_identical_cells() {
        let mut prev = DirtyCells::off();
        prev.enable(3, 5);
        prev.set_epoch(8);
        prev.touch(0); // dirty in prev, bit-identical across the rebuild
        prev.touch(1);
        let prev_z = [1.0, 2.0, 3.0];
        let new_z = [1.0, 2.5, 3.0]; // cell 1 changed in the rebuild
        let mut next = DirtyCells::off();
        next.inherit(&prev, &new_z, &prev_z, 12);
        // Watermark 8: only the rebuilt-and-changed cell.
        let changed = next.changed(&new_z, 8);
        assert_eq!(changed, vec![(1, 2.5f64.to_bits())]);
        // Watermark 5 additionally picks up cell 0's inherited stamp 8.
        assert_eq!(next.changed(&new_z, 5).len(), 1 + 1);
    }

    #[test]
    fn full_required_blocks_delta_until_reenabled() {
        let mut d = DirtyCells::off();
        d.enable(1, 0);
        assert!(d.can_delta(0, 4));
        d.require_full();
        assert!(!d.can_delta(0, 4));
        d.enable(1, 4);
        assert!(d.can_delta(4, 4));
        assert!(!d.can_delta(5, 4), "future watermark");
    }
}
