//! The paper's memory cost model (§7.1) and budget-constrained
//! configuration enumeration (the Table 2 sweeps).
//!
//! > "we charge 4B of memory utilization for each feature identifier,
//! > feature weight, and auxiliary weight (e.g., random keys … or counts …)
//! > used."
//!
//! Under this model:
//!
//! | Method | cost (bytes) | capacity at budget `B` |
//! |---|---|---|
//! | Simple Truncation | `8K` (id + weight) | `K = B/8` |
//! | Probabilistic Truncation | `12K` (id + weight + reservoir key) | `K = B/12` |
//! | Space-Saving Frequent | `12m` (id + count + weight) | `m = B/12` |
//! | Feature Hashing | `4k` (weights only) | `k = B/4` |
//! | WM-Sketch | `8·\|S\| + 4·k` | sweep |
//! | AWM-Sketch | `8·\|S\| + 4·k` | sweep |
//! | CM Frequent | `8K + 4·k_cm` | sweep |

use crate::awm::AwmSketchConfig;
use crate::wm::WmSketchConfig;

/// Bytes charged per identifier / weight / auxiliary value.
pub const BYTES_PER_UNIT: usize = 4;

/// Simple Truncation capacity for a byte budget (2 units per entry).
#[must_use]
pub fn trun_capacity(budget_bytes: usize) -> usize {
    (budget_bytes / (2 * BYTES_PER_UNIT)).max(1)
}

/// Probabilistic Truncation capacity (3 units per entry: the reservoir key
/// is auxiliary state).
#[must_use]
pub fn ptrun_capacity(budget_bytes: usize) -> usize {
    (budget_bytes / (3 * BYTES_PER_UNIT)).max(1)
}

/// Space-Saving classifier capacity (3 units per counter: id, count,
/// weight).
#[must_use]
pub fn spacesaving_capacity(budget_bytes: usize) -> usize {
    (budget_bytes / (3 * BYTES_PER_UNIT)).max(1)
}

/// Feature-hashing table size (1 unit per cell).
#[must_use]
pub fn feature_hashing_table_size(budget_bytes: usize) -> u32 {
    (budget_bytes / BYTES_PER_UNIT).max(1) as u32
}

/// WM-Sketch cost: heap entries are 2 units, sketch cells 1 unit.
#[must_use]
pub fn wm_bytes(heap_capacity: usize, sketch_cells: usize) -> usize {
    (2 * heap_capacity + sketch_cells) * BYTES_PER_UNIT
}

/// AWM-Sketch cost — identical structure to the WM-Sketch.
#[must_use]
pub fn awm_bytes(heap_capacity: usize, sketch_cells: usize) -> usize {
    wm_bytes(heap_capacity, sketch_cells)
}

/// Count-Min frequent-features classifier cost: a K-entry (id, weight) heap
/// plus the CM counter array.
#[must_use]
pub fn cm_classifier_bytes(heap_capacity: usize, cm_cells: usize) -> usize {
    (2 * heap_capacity + cm_cells) * BYTES_PER_UNIT
}

/// One candidate sketch shape from a budget sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedConfig {
    /// Heap / active-set capacity.
    pub heap_capacity: usize,
    /// Sketch row width.
    pub width: u32,
    /// Sketch depth.
    pub depth: u32,
}

impl BudgetedConfig {
    /// Cost in bytes under the §7.1 model.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        wm_bytes(
            self.heap_capacity,
            self.width as usize * self.depth as usize,
        )
    }

    /// Instantiates a [`WmSketchConfig`] with this shape.
    #[must_use]
    pub fn wm(&self) -> WmSketchConfig {
        WmSketchConfig::new(self.width, self.depth).heap_capacity(self.heap_capacity)
    }

    /// Instantiates an [`AwmSketchConfig`] with this shape.
    #[must_use]
    pub fn awm(&self) -> AwmSketchConfig {
        AwmSketchConfig::new(self.heap_capacity, self.width).depth(self.depth)
    }
}

/// Enumerates WM-Sketch shapes compatible with a byte budget, mirroring the
/// paper's §7.1 sweep: power-of-two heap sizes and widths, with depth
/// filling the remaining budget.
///
/// Every returned config satisfies `memory_bytes() ≤ budget_bytes` and
/// wastes less than half the cell budget.
#[must_use]
pub fn enumerate_wm_configs(budget_bytes: usize) -> Vec<BudgetedConfig> {
    let units = budget_bytes / BYTES_PER_UNIT;
    let mut out = Vec::new();
    let mut heap = 16usize;
    while 2 * heap < units {
        let cell_units = units - 2 * heap;
        let mut width = 16u32;
        while (width as usize) <= cell_units {
            let depth = (cell_units / width as usize).min(64) as u32;
            if depth >= 1 {
                out.push(BudgetedConfig {
                    heap_capacity: heap,
                    width,
                    depth,
                });
            }
            width *= 2;
        }
        heap *= 2;
    }
    debug_assert!(out.iter().all(|c| c.memory_bytes() <= budget_bytes));
    out
}

/// Enumerates AWM-Sketch shapes for a budget: like
/// [`enumerate_wm_configs`] but restricted to the depth-1 sketches the
/// active set favours, plus depth 2 and 4 for the ablations.
#[must_use]
pub fn enumerate_awm_configs(budget_bytes: usize) -> Vec<BudgetedConfig> {
    let units = budget_bytes / BYTES_PER_UNIT;
    let mut out = Vec::new();
    let mut heap = 16usize;
    while 2 * heap < units {
        let cell_units = units - 2 * heap;
        for depth in [1u32, 2, 4] {
            let per_row = cell_units / depth as usize;
            if per_row < 16 {
                continue;
            }
            // Largest power-of-two width that fits.
            let width = (per_row + 1).next_power_of_two() / 2;
            out.push(BudgetedConfig {
                heap_capacity: heap,
                width: width as u32,
                depth,
            });
        }
        heap *= 2;
    }
    debug_assert!(out.iter().all(|c| c.memory_bytes() <= budget_bytes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper_cost_model() {
        // 8 KB budget.
        assert_eq!(trun_capacity(8192), 1024);
        assert_eq!(ptrun_capacity(8192), 682);
        assert_eq!(spacesaving_capacity(8192), 682);
        assert_eq!(feature_hashing_table_size(8192), 2048);
    }

    #[test]
    fn paper_example_1024_bytes_for_128_entry_truncation() {
        // §7.1: "a simple truncation instance with 128 entries … 1024B".
        assert_eq!(trun_capacity(1024), 128);
    }

    #[test]
    fn table2_wm_8kb_row_fits() {
        // Table 2, 8 KB, WM: |S|=128, width 128, depth 14.
        let c = BudgetedConfig {
            heap_capacity: 128,
            width: 128,
            depth: 14,
        };
        assert!(c.memory_bytes() <= 8192);
        // Depth 15 would not fit alongside the heap.
        let c2 = BudgetedConfig {
            heap_capacity: 128,
            width: 128,
            depth: 15,
        };
        assert!(c2.memory_bytes() > 8192);
    }

    #[test]
    fn table2_awm_8kb_row_fits_exactly() {
        // Table 2, 8 KB, AWM: |S|=512, width 1024, depth 1.
        let c = BudgetedConfig {
            heap_capacity: 512,
            width: 1024,
            depth: 1,
        };
        assert_eq!(c.memory_bytes(), 8192);
    }

    #[test]
    fn enumerations_fit_budget_and_are_nonempty() {
        for budget in [2048usize, 4096, 8192, 16384, 32768] {
            for cfgs in [enumerate_wm_configs(budget), enumerate_awm_configs(budget)] {
                assert!(!cfgs.is_empty(), "no configs at {budget}");
                for c in &cfgs {
                    assert!(
                        c.memory_bytes() <= budget,
                        "{c:?} exceeds {budget} ({} bytes)",
                        c.memory_bytes()
                    );
                    assert!(c.depth >= 1 && c.width >= 16);
                }
            }
        }
    }

    #[test]
    fn baseline_capacities_at_all_paper_budgets() {
        // The paper's three headline budgets (Table 2 / Figures 3–7).
        // 2 KB: 512 units.
        assert_eq!(trun_capacity(2048), 256);
        assert_eq!(ptrun_capacity(2048), 170);
        assert_eq!(spacesaving_capacity(2048), 170);
        assert_eq!(feature_hashing_table_size(2048), 512);
        // 4 KB: 1024 units.
        assert_eq!(trun_capacity(4096), 512);
        assert_eq!(ptrun_capacity(4096), 341);
        assert_eq!(spacesaving_capacity(4096), 341);
        assert_eq!(feature_hashing_table_size(4096), 1024);
        // 8 KB checked in capacities_match_paper_cost_model.
    }

    #[test]
    fn wm_budget_constructor_shapes_at_2_4_8_kb() {
        // WM keeps |S| = 128 and width 128 and spends the rest on depth:
        // heap costs 1024 B, each depth level 512 B.
        for (budget, depth) in [(2048usize, 2u32), (4096, 6), (8192, 14)] {
            let cfg = crate::wm::WmSketchConfig::with_budget_bytes(budget);
            assert_eq!(cfg.heap_capacity, 128, "budget {budget}");
            assert_eq!(cfg.width, 128, "budget {budget}");
            assert_eq!(cfg.depth, depth, "budget {budget}");
            assert!(cfg.memory_bytes() <= budget);
            // The next depth level would blow the budget.
            assert!(
                wm_bytes(128, 128 * (depth as usize + 1)) > budget,
                "budget {budget} leaves a whole depth level unused"
            );
        }
    }

    #[test]
    fn awm_budget_constructor_shapes_at_2_4_8_kb() {
        // AWM splits the budget half active set, half depth-1 sketch
        // (§7.3): |S| = B/16, width = B/8.
        for (budget, heap, width) in [
            (2048usize, 128, 256u32),
            (4096, 256, 512),
            (8192, 512, 1024),
        ] {
            let cfg = crate::awm::AwmSketchConfig::with_budget_bytes(budget);
            assert_eq!(cfg.heap_capacity, heap, "budget {budget}");
            assert_eq!(cfg.width, width, "budget {budget}");
            assert_eq!(cfg.depth, 1, "budget {budget}");
            // The split is exact: the whole budget is spent.
            assert_eq!(cfg.memory_bytes(), budget);
        }
    }

    #[test]
    fn cm_classifier_cost_model() {
        // K-entry heap at 2 units each plus the CM cell array.
        assert_eq!(cm_classifier_bytes(128, 1792), 128 * 8 + 1792 * 4);
        assert_eq!(cm_classifier_bytes(0, 0), 0);
        // Same structure as the WM cost: heap entries are (id, weight).
        assert_eq!(cm_classifier_bytes(64, 512), wm_bytes(64, 512));
    }

    #[test]
    fn enumerated_configs_are_distinct_shapes() {
        for budget in [2048usize, 4096, 8192] {
            let cfgs = enumerate_wm_configs(budget);
            let mut keys: Vec<(usize, u32, u32)> = cfgs
                .iter()
                .map(|c| (c.heap_capacity, c.width, c.depth))
                .collect();
            keys.sort_unstable();
            let n = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), n, "duplicate shapes at {budget}");
        }
    }

    #[test]
    fn budgeted_config_instantiates_both_sketches() {
        let c = BudgetedConfig {
            heap_capacity: 64,
            width: 256,
            depth: 2,
        };
        let wm = c.wm();
        assert_eq!(wm.width, 256);
        assert_eq!(wm.depth, 2);
        assert_eq!(wm.heap_capacity, 64);
        let awm = c.awm();
        assert_eq!(awm.width, 256);
        assert_eq!(awm.depth, 2);
        assert_eq!(awm.heap_capacity, 64);
    }
}
