//! Theory-driven parameter selection — Theorems 1 and 2 of the paper.
//!
//! Theorem 1 (batch): for feature dimension `d`, failure probability `δ`,
//! a β-strongly-smooth loss, inputs with `‖x‖₁ ≤ γ`, and `ℓ2` strength
//! `λ`, choosing
//!
//! ```text
//! k = (C₁/ε⁴)·log³(d/δ)·max{1, β²γ⁴/λ²}      (total sketch cells)
//! s = (C₂/ε²)·log²(d/δ)·max{1, βγ²/λ}        (sketch depth)
//! ```
//!
//! gives `‖w* − w_est‖∞ ≤ ε·‖w*‖₁` with probability `1 − δ`. Theorem 2
//! extends the guarantee to single-pass online updates over
//! randomly-ordered streams with the same `k`/`s` scaling, given a minimum
//! stream length `T`.
//!
//! The constants `C₁, C₂` are not given explicitly by the analysis (they
//! absorb the JL and Count-Sketch constants); we expose them as inputs
//! with defaults of 1, which matches how practitioners use such bounds —
//! as *scaling laws* for how much to grow the sketch when ε, δ, d, or λ
//! change. The paper's own experiments likewise pick sizes empirically
//! (Table 2) rather than from the constants.

/// Problem parameters for the recovery guarantee.
#[derive(Debug, Clone, Copy)]
pub struct GuaranteeParams {
    /// Target per-weight error `ε` (error bound is `ε‖w*‖₁`).
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Feature dimension `d`.
    pub dim: u64,
    /// Smoothness constant β of the loss (1 for logistic / squared).
    pub beta: f64,
    /// Bound `γ ≥ max_t ‖x_t‖₁` on input ℓ1 norms.
    pub gamma: f64,
    /// `ℓ2` regularization strength λ.
    pub lambda: f64,
    /// Scaling constant `C₁` for the size bound (default 1).
    pub c1: f64,
    /// Scaling constant `C₂` for the depth bound (default 1).
    pub c2: f64,
}

impl GuaranteeParams {
    /// Parameters for a normalized logistic-regression workload
    /// (`β = γ = 1`, the paper's "simpler expressions" setting).
    #[must_use]
    pub fn normalized_logistic(epsilon: f64, delta: f64, dim: u64, lambda: f64) -> Self {
        Self {
            epsilon,
            delta,
            dim,
            beta: 1.0,
            gamma: 1.0,
            lambda,
            c1: 1.0,
            c2: 1.0,
        }
    }

    fn log_d_delta(&self) -> f64 {
        (self.dim as f64 / self.delta).ln().max(1.0)
    }

    /// Theorem 1's total sketch size `k` (number of cells).
    ///
    /// # Panics
    /// Panics if `ε`, `δ`, or `λ` are not in `(0, 1]`/positive.
    #[must_use]
    pub fn sketch_size(&self) -> u64 {
        self.validate();
        let l = self.log_d_delta();
        let cond =
            (self.beta * self.beta * self.gamma.powi(4) / (self.lambda * self.lambda)).max(1.0);
        (self.c1 / self.epsilon.powi(4) * l.powi(3) * cond).ceil() as u64
    }

    /// Theorem 1's sketch depth `s` (number of rows).
    #[must_use]
    pub fn sketch_depth(&self) -> u64 {
        self.validate();
        let l = self.log_d_delta();
        let cond = (self.beta * self.gamma * self.gamma / self.lambda).max(1.0);
        (self.c2 / (self.epsilon * self.epsilon) * l * l * cond).ceil() as u64
    }

    /// Row width `k/s` implied by the two bounds (at least 1).
    #[must_use]
    pub fn sketch_width(&self) -> u64 {
        (self.sketch_size() / self.sketch_depth().max(1)).max(1)
    }

    /// Theorem 2's minimum stream length `T` for the online guarantee,
    /// given bounds `D₂ ≥ ‖w*‖₂`, `D₁ ≥ ‖w*‖₁`, and derivative bound `H`.
    ///
    /// `T ≥ (C₃/ε⁴)·ζ·log²(d/δ)·max{1, βγ²/λ}` with
    /// `ζ = (1/λ²)(D₂/‖w*‖₁)²(G + (1+γ)H)²` and `G ≤ H(1+γ) + λD`,
    /// `D = D₂ + εD₁`.
    #[must_use]
    pub fn online_min_stream_length(&self, d2: f64, d1: f64, h: f64, w_star_l1: f64) -> u64 {
        self.validate();
        assert!(w_star_l1 > 0.0, "w* l1 norm must be positive");
        let l = self.log_d_delta();
        let dd = d2 + self.epsilon * d1;
        let g = h * (1.0 + self.gamma) + self.lambda * dd;
        let zeta = (1.0 / (self.lambda * self.lambda))
            * (d2 / w_star_l1).powi(2)
            * (g + (1.0 + self.gamma) * h).powi(2);
        let cond = (self.beta * self.gamma * self.gamma / self.lambda).max(1.0);
        (zeta / self.epsilon.powi(4) * l * l * cond).ceil() as u64
    }

    /// Memory (bytes, 4 B/cell) the Theorem-1 sketch would occupy —
    /// useful for sanity-checking that a guarantee is affordable.
    #[must_use]
    pub fn sketch_bytes(&self) -> u64 {
        self.sketch_size() * crate::budget::BYTES_PER_UNIT as u64
    }

    fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon <= 1.0,
            "epsilon in (0,1]"
        );
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta in (0,1)");
        assert!(self.lambda > 0.0, "lambda must be positive");
        assert!(self.beta > 0.0 && self.gamma > 0.0, "beta/gamma positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GuaranteeParams {
        GuaranteeParams::normalized_logistic(0.5, 0.1, 1 << 20, 1.0)
    }

    #[test]
    fn size_scales_as_eps_to_minus_4() {
        let p1 = GuaranteeParams {
            epsilon: 0.5,
            ..base()
        };
        let p2 = GuaranteeParams {
            epsilon: 0.25,
            ..base()
        };
        let ratio = p2.sketch_size() as f64 / p1.sketch_size() as f64;
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn depth_scales_as_eps_to_minus_2() {
        let p1 = GuaranteeParams {
            epsilon: 0.5,
            ..base()
        };
        let p2 = GuaranteeParams {
            epsilon: 0.25,
            ..base()
        };
        let ratio = p2.sketch_depth() as f64 / p1.sketch_depth() as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn size_is_polylog_in_dimension() {
        // Doubling d many times must grow k only polylogarithmically:
        // going from 2^20 to 2^40 multiplies log(d/δ) by < 2, so k grows
        // by < 8 (cubed) — *sub-linear* in d by an enormous margin.
        let p_small = GuaranteeParams {
            dim: 1 << 20,
            ..base()
        };
        let p_large = GuaranteeParams {
            dim: 1 << 40,
            ..base()
        };
        let growth = p_large.sketch_size() as f64 / p_small.sketch_size() as f64;
        assert!(growth < 8.0, "growth {growth}");
        assert!(growth > 1.0);
    }

    #[test]
    fn weak_regularization_inflates_requirements() {
        let strong = GuaranteeParams {
            lambda: 1.0,
            ..base()
        };
        let weak = GuaranteeParams {
            lambda: 0.01,
            ..base()
        };
        // k scales with 1/λ² (for λ < βγ²), s with 1/λ.
        assert!(weak.sketch_size() > 5000 * strong.sketch_size() / 1000);
        assert!(weak.sketch_depth() > strong.sketch_depth());
    }

    #[test]
    fn width_times_depth_consistent() {
        let p = base();
        assert!(p.sketch_width() * p.sketch_depth() <= p.sketch_size());
        assert_eq!(p.sketch_bytes(), p.sketch_size() * 4);
    }

    #[test]
    fn online_length_scales_with_inverse_lambda_squared() {
        let p1 = GuaranteeParams {
            lambda: 1.0,
            ..base()
        };
        let p2 = GuaranteeParams {
            lambda: 0.5,
            ..base()
        };
        let t1 = p1.online_min_stream_length(1.0, 4.0, 1.0, 4.0);
        let t2 = p2.online_min_stream_length(1.0, 4.0, 1.0, 4.0);
        assert!(t2 > t1);
    }

    #[test]
    #[should_panic(expected = "epsilon in (0,1]")]
    fn rejects_bad_epsilon() {
        let p = GuaranteeParams {
            epsilon: 0.0,
            ..base()
        };
        let _ = p.sketch_size();
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_bad_lambda() {
        let p = GuaranteeParams {
            lambda: 0.0,
            ..base()
        };
        let _ = p.sketch_depth();
    }
}
