//! Synthetic sparse binary-classification streams standing in for the
//! paper's three benchmark datasets (RCV1, malicious URLs, KDD Algebra).
//!
//! Each example draws `nnz` features from a Zipf distribution over `[d]`
//! (feature id = popularity rank, so low ids are frequent, matching
//! bag-of-words statistics), evaluates a *planted* sparse logistic model
//! on them, and samples the label from the resulting probability. The
//! generators differ in where the planted discriminative features live:
//!
//! * `rcv1_like` — signal on *head* (frequent) features: frequency-based
//!   baselines like Space-Saving stay competitive, as the paper observed
//!   on RCV1;
//! * `url_like` — signal on *mid-tail* features: frequent ≠ predictive, so
//!   Space-Saving underperforms probabilistic truncation, the paper's
//!   URL-dataset finding;
//! * `kdda_like` — very high dimension and low nnz, the collision-dominated
//!   regime of the KDD Algebra dataset.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wmsketch_learn::{Label, SparseVector};

use crate::zipf::Zipf;

/// Where the planted discriminative weights sit in the frequency ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalPlacement {
    /// On the most frequent features (ranks `0..n_signal`).
    Head,
    /// On mid-tail features starting at this rank offset.
    MidTail(u32),
}

/// Configuration for [`SyntheticClassification`].
#[derive(Debug, Clone, Copy)]
pub struct ClassificationConfig {
    /// Feature dimension `d`.
    pub dim: u32,
    /// Features per example (before deduplication).
    pub nnz: usize,
    /// Zipf exponent of the feature-frequency distribution.
    pub zipf_s: f64,
    /// Number of planted discriminative features.
    pub n_signal: usize,
    /// Placement of the planted features.
    pub placement: SignalPlacement,
    /// Magnitude scale of the planted weights.
    pub signal_strength: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClassificationConfig {
    /// Validates and freezes the config into a generator.
    #[must_use]
    pub fn build(self) -> SyntheticClassification {
        SyntheticClassification::new(self)
    }
}

/// A seeded generator of `(SparseVector, Label)` examples (see module
/// docs).
#[derive(Debug)]
pub struct SyntheticClassification {
    cfg: ClassificationConfig,
    zipf: Zipf,
    rng: StdRng,
    /// Planted model: `(feature, weight)` sorted by feature id.
    truth: Vec<(u32, f64)>,
    /// Mean planted margin (estimated at construction); subtracted so
    /// labels come out balanced — head features appear in nearly every
    /// example, so the raw margin has a large constant component that
    /// would otherwise make one class dominate.
    margin_bias: f64,
    scratch: Vec<(u32, f64)>,
}

impl SyntheticClassification {
    /// Creates a generator from a config.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `nnz == 0`, or the signal region exceeds the
    /// dimension.
    #[must_use]
    pub fn new(cfg: ClassificationConfig) -> Self {
        assert!(
            cfg.dim > 0 && cfg.nnz > 0,
            "dimension and nnz must be nonzero"
        );
        let base = match cfg.placement {
            SignalPlacement::Head => 0,
            SignalPlacement::MidTail(off) => off,
        };
        assert!(
            base as usize + cfg.n_signal <= cfg.dim as usize,
            "signal region exceeds dimension"
        );
        // Planted weights: alternating signs, power-law magnitudes, so the
        // "true top-K" is well defined at every K.
        let truth: Vec<(u32, f64)> = (0..cfg.n_signal)
            .map(|j| {
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                let mag = cfg.signal_strength / (1.0 + j as f64).sqrt();
                (base + j as u32, sign * mag)
            })
            .collect();
        let zipf = Zipf::new(u64::from(cfg.dim), cfg.zipf_s);
        // Burn-in (separate RNG stream): estimate the mean planted margin
        // so labels can be centred. Deterministic given the seed.
        let mut burn_rng = StdRng::seed_from_u64(cfg.seed ^ 0xB1A5);
        let truth_map: std::collections::HashMap<u32, f64> = truth.iter().copied().collect();
        let burn = 2000u32;
        let mut total = 0.0;
        for _ in 0..burn {
            for _ in 0..cfg.nnz {
                let f = (zipf.sample(&mut burn_rng) - 1) as u32;
                if let Some(&w) = truth_map.get(&f) {
                    total += w;
                }
            }
        }
        let margin_bias = total / f64::from(burn);
        Self {
            zipf,
            rng: StdRng::seed_from_u64(cfg.seed),
            truth,
            margin_bias,
            scratch: Vec::with_capacity(cfg.nnz),
            cfg,
        }
    }

    /// RCV1-like: 2^16 features, ~75 nnz, signal on the head, spread over
    /// thousands of features so that the optimal model is effectively
    /// dense (the paper's premise) and classification accuracy depends on
    /// how much of the weight mass a budgeted model can represent.
    #[must_use]
    pub fn rcv1_like(seed: u64) -> Self {
        ClassificationConfig {
            dim: 1 << 16,
            nnz: 75,
            zipf_s: 1.1,
            n_signal: 4096,
            placement: SignalPlacement::Head,
            signal_strength: 2.0,
            seed,
        }
        .build()
    }

    /// URL-like: 2^21 features, ~40 nnz, signal planted mid-tail (ranks
    /// 2000–10192) — below the reach of a budgeted frequency tracker (a
    /// 682-counter Space-Saving summary can only pin the top ~682 ranks),
    /// reproducing the paper's URL finding that frequent ≠ predictive.
    #[must_use]
    pub fn url_like(seed: u64) -> Self {
        ClassificationConfig {
            dim: 1 << 21,
            nnz: 40,
            zipf_s: 1.05,
            n_signal: 8192,
            placement: SignalPlacement::MidTail(2000),
            signal_strength: 3.0,
            seed,
        }
        .build()
    }

    /// KDD-Algebra-like: 2^22 features, ~30 nnz.
    #[must_use]
    pub fn kdda_like(seed: u64) -> Self {
        ClassificationConfig {
            dim: 1 << 22,
            nnz: 30,
            zipf_s: 1.1,
            n_signal: 8192,
            placement: SignalPlacement::Head,
            signal_strength: 2.5,
            seed,
        }
        .build()
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &ClassificationConfig {
        &self.cfg
    }

    /// The planted `(feature, weight)` model, sorted by feature id.
    #[must_use]
    pub fn planted_model(&self) -> &[(u32, f64)] {
        &self.truth
    }

    /// Draws the next labelled example. Feature values are 1 (bag of
    /// words) and the vector is ℓ2-normalized, matching the paper's
    /// `‖x‖₂ ≤ 1` assumption.
    pub fn next_example(&mut self) -> (SparseVector, Label) {
        self.scratch.clear();
        for _ in 0..self.cfg.nnz {
            // rank 1..=d maps to feature id rank-1.
            let f = (self.zipf.sample(&mut self.rng) - 1) as u32;
            self.scratch.push((f, 1.0));
        }
        let mut x = SparseVector::from_pairs(&self.scratch);
        // Planted margin on raw (unnormalized) counts, centred so classes
        // come out balanced.
        let margin: f64 =
            self.truth.iter().map(|&(f, w)| w * x.get(f)).sum::<f64>() - self.margin_bias;
        let p = 1.0 / (1.0 + (-margin).exp());
        let y: Label = if self.rng.random::<f64>() < p { 1 } else { -1 };
        x.l2_normalize();
        (x, y)
    }

    /// Convenience: materializes `n` examples.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<(SparseVector, Label)> {
        (0..n).map(|_| self.next_example()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> SyntheticClassification {
        ClassificationConfig {
            dim: 1 << 12,
            nnz: 20,
            zipf_s: 1.1,
            n_signal: 32,
            placement: SignalPlacement::Head,
            signal_strength: 4.0,
            seed,
        }
        .build()
    }

    #[test]
    fn examples_are_normalized_and_in_range() {
        let mut g = small(1);
        for _ in 0..200 {
            let (x, y) = g.next_example();
            assert!(y == 1 || y == -1);
            assert!(!x.is_empty());
            assert!((x.l2_norm() - 1.0).abs() < 1e-9);
            assert!(x.indices().iter().all(|&i| i < 1 << 12));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small(7).take(50);
        let b = small(7).take(50);
        assert_eq!(a, b);
        let c = small(8).take(50);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_correlate_with_planted_model() {
        // Examples containing the strongest planted-positive feature should
        // be labelled +1 more often than examples without it (margins are
        // centred, so we compare conditionals rather than absolutes).
        let mut g = small(2);
        let (mut pos_with, mut tot_with, mut pos_without, mut tot_without) =
            (0u32, 0u32, 0u32, 0u32);
        for _ in 0..8000 {
            let (x, y) = g.next_example();
            if x.get(0) > 0.0 {
                tot_with += 1;
                pos_with += u32::from(y == 1);
            } else {
                tot_without += 1;
                pos_without += u32::from(y == 1);
            }
        }
        assert!(tot_with > 100, "feature 0 should be frequent (head)");
        assert!(tot_without > 100);
        let p_with = f64::from(pos_with) / f64::from(tot_with);
        let p_without = f64::from(pos_without) / f64::from(tot_without);
        assert!(
            p_with > p_without + 0.15,
            "P(y=+1|x0) = {p_with:.3} vs P(y=+1|!x0) = {p_without:.3}"
        );
    }

    #[test]
    fn planted_model_alternates_signs_and_decays() {
        let g = small(3);
        let m = g.planted_model();
        assert_eq!(m.len(), 32);
        assert!(m[0].1 > 0.0 && m[1].1 < 0.0);
        assert!(m[0].1.abs() > m[31].1.abs());
    }

    #[test]
    fn midtail_placement_offsets_signal() {
        let g = ClassificationConfig {
            dim: 1 << 14,
            nnz: 10,
            zipf_s: 1.05,
            n_signal: 16,
            placement: SignalPlacement::MidTail(500),
            signal_strength: 5.0,
            seed: 4,
        }
        .build();
        assert!(g.planted_model().iter().all(|&(f, _)| f >= 500));
    }

    #[test]
    fn presets_construct() {
        // Construction exercises the assertions; drawing a few examples
        // exercises the samplers at realistic dimensions.
        for mut g in [
            SyntheticClassification::rcv1_like(1),
            SyntheticClassification::url_like(1),
            SyntheticClassification::kdda_like(1),
        ] {
            let (x, _) = g.next_example();
            assert!(x.nnz() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "signal region exceeds dimension")]
    fn oversized_signal_panics() {
        let _ = ClassificationConfig {
            dim: 8,
            nnz: 2,
            zipf_s: 1.0,
            n_signal: 100,
            placement: SignalPlacement::Head,
            signal_strength: 1.0,
            seed: 0,
        }
        .build();
    }
}
