//! Seeded synthetic workload generators.
//!
//! The paper evaluates on six datasets (Table 1) none of which can be
//! redistributed here, so each is replaced by a generator that preserves
//! the statistical property its experiments measure — the substitution
//! table with justifications is in `DESIGN.md` §1.3:
//!
//! | Paper dataset | Generator |
//! |---|---|
//! | Reuters RCV1 | [`SyntheticClassification::rcv1_like`] |
//! | Malicious URLs | [`SyntheticClassification::url_like`] |
//! | KDD Cup Algebra | [`SyntheticClassification::kdda_like`] |
//! | FEC disbursements | [`DisbursementGen`] |
//! | CAIDA packet trace | [`PacketTraceGen`] |
//! | Newswire corpus | [`CorpusGen`] |
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod classification;
pub mod corpus;
pub mod disbursements;
pub mod packets;
pub mod reservoir;
pub mod zipf;

pub use classification::{ClassificationConfig, SignalPlacement, SyntheticClassification};
pub use corpus::{CorpusConfig, CorpusGen};
pub use disbursements::{DisbursementConfig, DisbursementGen, DisbursementRow};
pub use packets::{PacketEvent, PacketTraceConfig, PacketTraceGen, StreamSide};
pub use reservoir::Reservoir;
pub use zipf::Zipf;
