//! Uniform reservoir sampling (Vitter's Algorithm R).
//!
//! The paper's streaming-PMI estimator (§8.3) approximates sampling from
//! the unigram distribution by sampling from "a reservoir sample of
//! tokens"; the Probabilistic Truncation baseline is itself a *weighted*
//! reservoir (implemented separately in `wmsketch-core`).

use rand::{Rng, RngExt};

/// A fixed-capacity uniform sample over a stream of `T`s.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Number of stream elements observed so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of currently held samples (`min(seen, capacity)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds no samples yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one stream element.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.random_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Draws one held sample uniformly at random (None while empty).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.random_range(0..self.items.len())])
        }
    }

    /// The currently held samples.
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn fills_before_replacing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(4);
        for i in 0..4u32 {
            r.offer(i, &mut rng);
        }
        let mut held: Vec<u32> = r.items().to_vec();
        held.sort_unstable();
        assert_eq!(held, vec![0, 1, 2, 3]);
    }

    #[test]
    fn len_caps_at_capacity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(8);
        for i in 0..100u32 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Each of 20 items should appear in a size-5 reservoir with
        // probability 1/4; average over many trials.
        let mut inclusions = [0u32; 20];
        for trial in 0..4000u64 {
            let mut rng = StdRng::seed_from_u64(trial);
            let mut r = Reservoir::new(5);
            for i in 0..20u32 {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                inclusions[i as usize] += 1;
            }
        }
        for (i, &c) in inclusions.iter().enumerate() {
            let p = f64::from(c) / 4000.0;
            assert!((p - 0.25).abs() < 0.03, "item {i}: inclusion {p:.3}");
        }
    }

    #[test]
    fn sample_none_when_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let r: Reservoir<u32> = Reservoir::new(4);
        assert!(r.sample(&mut rng).is_none());
    }
}
