//! Synthetic token streams with planted collocations, standing in for the
//! billion-word newswire corpus of §8.3.
//!
//! Tokens are drawn from a Zipfian vocabulary (token id = frequency rank).
//! A set of planted *collocation pairs* `(u, v)` occasionally fires as an
//! adjacent bigram: because `u` and `v` individually sit in the mid-tail,
//! their joint probability vastly exceeds the independence baseline
//! `p(u)p(v)`, giving them large positive PMI — the "prime minister" /
//! "los angeles" structure Table 3 recovers. Frequent-token pairs like
//! ", the" co-occur often but have PMI ≈ 0, reproducing the paper's
//! contrast between frequent and informative pairs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Configuration for [`CorpusGen`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Vocabulary size.
    pub vocab: u32,
    /// Zipf exponent of the unigram distribution.
    pub zipf_s: f64,
    /// Number of planted collocation pairs.
    pub n_collocations: usize,
    /// Probability that the next emission is a planted collocation
    /// (two tokens) instead of a single unigram draw.
    pub collocation_rate: f64,
    /// First token rank (0-based) used for collocation members; members
    /// are taken from the mid-tail starting here.
    pub collocation_base: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab: 1 << 16,
            zipf_s: 1.05,
            n_collocations: 64,
            collocation_rate: 0.01,
            collocation_base: 1000,
            seed: 0,
        }
    }
}

/// Generator of a token stream with planted collocations (see module
/// docs).
#[derive(Debug)]
pub struct CorpusGen {
    cfg: CorpusConfig,
    zipf: Zipf,
    rng: StdRng,
    /// Planted pairs `(u, v)`.
    collocations: Vec<(u32, u32)>,
    /// Pending second token of a fired collocation.
    pending: Option<u32>,
}

impl CorpusGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if the collocation region exceeds the vocabulary.
    #[must_use]
    pub fn new(cfg: CorpusConfig) -> Self {
        let needed = u64::from(cfg.collocation_base) + 2 * cfg.n_collocations as u64;
        assert!(
            needed <= u64::from(cfg.vocab),
            "collocation region exceeds vocabulary"
        );
        let collocations: Vec<(u32, u32)> = (0..cfg.n_collocations as u32)
            .map(|j| {
                (
                    cfg.collocation_base + 2 * j,
                    cfg.collocation_base + 2 * j + 1,
                )
            })
            .collect();
        Self {
            zipf: Zipf::new(u64::from(cfg.vocab), cfg.zipf_s),
            rng: StdRng::seed_from_u64(cfg.seed),
            collocations,
            pending: None,
            cfg,
        }
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// The planted collocation pairs.
    #[must_use]
    pub fn collocations(&self) -> &[(u32, u32)] {
        &self.collocations
    }

    /// Whether `(u, v)` is a planted collocation.
    #[must_use]
    pub fn is_collocation(&self, u: u32, v: u32) -> bool {
        v == u + 1
            && u >= self.cfg.collocation_base
            && (u - self.cfg.collocation_base).is_multiple_of(2)
            && ((u - self.cfg.collocation_base) / 2) < self.cfg.n_collocations as u32
    }

    /// Draws the next token.
    pub fn next_token(&mut self) -> u32 {
        if let Some(v) = self.pending.take() {
            return v;
        }
        if self.rng.random::<f64>() < self.cfg.collocation_rate {
            let j = self.rng.random_range(0..self.collocations.len());
            let (u, v) = self.collocations[j];
            self.pending = Some(v);
            return u;
        }
        (self.zipf.sample(&mut self.rng) - 1) as u32
    }

    /// Materializes `n` tokens.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_token()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> CorpusGen {
        CorpusGen::new(CorpusConfig {
            vocab: 4096,
            zipf_s: 1.05,
            n_collocations: 8,
            collocation_rate: 0.02,
            collocation_base: 100,
            seed,
        })
    }

    #[test]
    fn tokens_in_vocab() {
        let mut g = small(1);
        for t in g.take(10_000) {
            assert!(t < 4096);
        }
    }

    #[test]
    fn collocations_fire_adjacently() {
        let mut g = small(2);
        let tokens = g.take(200_000);
        // Count adjacent occurrences of the first planted pair.
        let (u, v) = g.collocations()[0];
        let adjacent = tokens.windows(2).filter(|w| w[0] == u && w[1] == v).count();
        // Rate 0.02 over 8 pairs → pair 0 fires ≈ 0.0025 of emissions; as
        // each firing consumes 2 tokens, expect ≳ 150 in 200k tokens.
        assert!(adjacent > 100, "adjacent firings: {adjacent}");
    }

    #[test]
    fn planted_pairs_have_high_empirical_pmi() {
        let mut g = small(3);
        let tokens = g.take(400_000);
        let n = tokens.len() as f64;
        let mut uni = std::collections::HashMap::new();
        let mut bi = std::collections::HashMap::new();
        for w in tokens.windows(2) {
            *uni.entry(w[0]).or_insert(0.0f64) += 1.0;
            *bi.entry((w[0], w[1])).or_insert(0.0f64) += 1.0;
        }
        *uni.entry(tokens[tokens.len() - 1]).or_insert(0.0) += 1.0;
        let (u, v) = g.collocations()[0];
        let p_uv = bi.get(&(u, v)).copied().unwrap_or(0.0) / n;
        let p_u = uni[&u] / n;
        let p_v = uni[&v] / n;
        let pmi = (p_uv / (p_u * p_v)).ln();
        assert!(pmi > 3.0, "PMI of planted pair = {pmi:.2}");
        // A frequent pair (top two ranks) should have much lower PMI.
        if let Some(&c) = bi.get(&(0, 1)) {
            let pmi_freq = ((c / n) / (uni[&0] / n * uni[&1] / n)).ln();
            assert!(pmi_freq < pmi - 2.0, "frequent-pair PMI {pmi_freq:.2}");
        }
    }

    #[test]
    fn is_collocation_agrees_with_list() {
        let g = small(4);
        for &(u, v) in g.collocations() {
            assert!(g.is_collocation(u, v));
        }
        assert!(!g.is_collocation(0, 1));
        assert!(!g.is_collocation(101, 102)); // (100,101) is planted; (101,102) is not
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(small(5).take(100), small(5).take(100));
    }

    #[test]
    #[should_panic(expected = "exceeds vocabulary")]
    fn oversized_collocation_region_panics() {
        let _ = CorpusGen::new(CorpusConfig {
            vocab: 16,
            collocation_base: 10,
            n_collocations: 10,
            ..CorpusConfig::default()
        });
    }
}
