//! Synthetic categorical rows with planted relative risks, standing in for
//! the FEC candidate-disbursements dataset of §8.1.
//!
//! Each row carries one value per categorical attribute column (payee,
//! state, purpose, …), values drawn Zipf per column. Rows are labelled
//! outlier/inlier from a logistic model over *planted per-value risk
//! logits*, so some attribute values genuinely occur more among outliers
//! (relative risk > 1), some less (< 1), and most are neutral — the
//! structure Figures 8 and 9 measure. As in the paper, each row is emitted
//! as a sequence of **1-sparse feature vectors**, one per attribute, all
//! sharing the row's label.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wmsketch_learn::{Label, SparseVector};

use crate::zipf::Zipf;

/// Configuration for [`DisbursementGen`].
#[derive(Debug, Clone, Copy)]
pub struct DisbursementConfig {
    /// Number of categorical attribute columns per row.
    pub n_columns: usize,
    /// Distinct values per column.
    pub values_per_column: u32,
    /// Zipf exponent of value popularity within a column.
    pub zipf_s: f64,
    /// Fraction of values per column given a non-neutral planted risk.
    pub risky_fraction: f64,
    /// Magnitude scale of planted risk logits.
    pub risk_strength: f64,
    /// Base outlier rate (paper: top-20% by amount ⇒ 0.2).
    pub base_outlier_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DisbursementConfig {
    /// Defaults sized so that per-feature occurrence counts at a few
    /// hundred thousand rows match the *converged* regime of the paper's
    /// 40.8M-row FEC stream: with 2^11 values per column, head values
    /// recur thousands of times and their learned weights reach their
    /// log-odds asymptotes (which is what Figs. 8–9 measure).
    fn default() -> Self {
        Self {
            n_columns: 8,
            values_per_column: 1 << 11,
            zipf_s: 1.1,
            risky_fraction: 0.05,
            risk_strength: 2.0,
            base_outlier_rate: 0.2,
            seed: 0,
        }
    }
}

/// One generated row: the global feature id of each attribute value plus
/// the outlier label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisbursementRow {
    /// One feature id per column (`column * values_per_column + value`).
    pub features: Vec<u32>,
    /// `+1` = outlier, `−1` = inlier.
    pub label: Label,
}

impl DisbursementRow {
    /// The paper's emission scheme: one 1-sparse vector per attribute, all
    /// labelled with the row's label.
    #[must_use]
    pub fn one_sparse_examples(&self) -> Vec<(SparseVector, Label)> {
        self.features
            .iter()
            .map(|&f| (SparseVector::one_hot(f, 1.0), self.label))
            .collect()
    }
}

/// Generator of labelled categorical rows (see module docs).
#[derive(Debug)]
pub struct DisbursementGen {
    cfg: DisbursementConfig,
    zipf: Zipf,
    rng: StdRng,
    /// Planted per-feature risk logits (0 for neutral features), indexed by
    /// global feature id.
    logits: Vec<f64>,
    base_logit: f64,
}

impl DisbursementGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on degenerate configs (no columns/values, rates outside
    /// (0, 1)).
    #[must_use]
    pub fn new(cfg: DisbursementConfig) -> Self {
        assert!(
            cfg.n_columns > 0 && cfg.values_per_column > 0,
            "empty schema"
        );
        assert!(
            cfg.base_outlier_rate > 0.0 && cfg.base_outlier_rate < 1.0,
            "base outlier rate must be in (0,1)"
        );
        let n_features = cfg.n_columns * cfg.values_per_column as usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD15B);
        let mut logits = vec![0.0; n_features];
        for logit in logits.iter_mut() {
            // Every attribute value carries a small continuous association
            // with the outlier class (real categorical attributes are never
            // exactly neutral), plus a `risky_fraction` minority with strong
            // planted risks — the features Figs. 8–9 should surface.
            *logit = 0.25 * cfg.risk_strength * (rng.random::<f64>() - 0.5);
            if rng.random::<f64>() < cfg.risky_fraction {
                // Symmetric: half risky (positive logit), half protective.
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                *logit += sign * cfg.risk_strength * (0.5 + rng.random::<f64>());
            }
        }
        let base_logit = (cfg.base_outlier_rate / (1.0 - cfg.base_outlier_rate)).ln();
        Self {
            zipf: Zipf::new(u64::from(cfg.values_per_column), cfg.zipf_s),
            rng: StdRng::seed_from_u64(cfg.seed),
            logits,
            base_logit,
            cfg,
        }
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &DisbursementConfig {
        &self.cfg
    }

    /// Total feature-space dimension (`n_columns × values_per_column`).
    #[must_use]
    pub fn dim(&self) -> u32 {
        (self.cfg.n_columns * self.cfg.values_per_column as usize) as u32
    }

    /// The planted risk logit of a feature (0 = neutral).
    #[must_use]
    pub fn planted_logit(&self, feature: u32) -> f64 {
        self.logits.get(feature as usize).copied().unwrap_or(0.0)
    }

    /// Draws the next row.
    pub fn next_row(&mut self) -> DisbursementRow {
        let mut features = Vec::with_capacity(self.cfg.n_columns);
        let mut logit = self.base_logit;
        for col in 0..self.cfg.n_columns {
            let value = (self.zipf.sample(&mut self.rng) - 1) as u32;
            let feature = col as u32 * self.cfg.values_per_column + value;
            logit += self.logits[feature as usize];
            features.push(feature);
        }
        let p = 1.0 / (1.0 + (-logit).exp());
        let label: Label = if self.rng.random::<f64>() < p { 1 } else { -1 };
        DisbursementRow { features, label }
    }

    /// Materializes `n` rows.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<DisbursementRow> {
        (0..n).map(|_| self.next_row()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> DisbursementGen {
        DisbursementGen::new(DisbursementConfig {
            n_columns: 4,
            values_per_column: 256,
            zipf_s: 1.1,
            risky_fraction: 0.05,
            risk_strength: 2.5,
            base_outlier_rate: 0.2,
            seed,
        })
    }

    #[test]
    fn rows_have_one_feature_per_column() {
        let mut g = small(1);
        for row in g.take(100) {
            assert_eq!(row.features.len(), 4);
            for (col, &f) in row.features.iter().enumerate() {
                assert!(f / 256 == col as u32, "feature {f} not in column {col}");
            }
        }
    }

    #[test]
    fn base_outlier_rate_without_risky_features() {
        let mut g = DisbursementGen::new(DisbursementConfig {
            risky_fraction: 0.0,
            ..small(2).cfg
        });
        let rows = g.take(20_000);
        let outliers = rows.iter().filter(|r| r.label == 1).count();
        let rate = outliers as f64 / rows.len() as f64;
        assert!((rate - 0.2).abs() < 0.02, "outlier rate {rate:.3}");
    }

    #[test]
    fn risky_features_have_elevated_empirical_relative_risk() {
        let mut g = small(3);
        // Find a planted-risky feature in column 0 among popular values.
        let risky = (0..256u32)
            .find(|&f| g.planted_logit(f) > 1.0)
            .expect("some popular value should be risky at 5%");
        let rows = g.take(100_000);
        let (mut out_with, mut tot_with, mut out_without, mut tot_without) =
            (0u32, 0u32, 0u32, 0u32);
        for r in &rows {
            let has = r.features.contains(&risky);
            let out = r.label == 1;
            if has {
                tot_with += 1;
                out_with += u32::from(out);
            } else {
                tot_without += 1;
                out_without += u32::from(out);
            }
        }
        if tot_with > 50 {
            let rr = (f64::from(out_with) / f64::from(tot_with))
                / (f64::from(out_without) / f64::from(tot_without));
            assert!(rr > 1.5, "relative risk {rr:.2} for planted-risky feature");
        }
    }

    #[test]
    fn one_sparse_emission() {
        let mut g = small(4);
        let row = g.next_row();
        let examples = row.one_sparse_examples();
        assert_eq!(examples.len(), 4);
        for (x, y) in &examples {
            assert_eq!(x.nnz(), 1);
            assert_eq!(*y, row.label);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(small(5).take(50), small(5).take(50));
    }
}
