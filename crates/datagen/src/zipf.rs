//! Zipf-distributed sampling by rejection inversion (Hörmann & Derflinger,
//! "Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996) — `O(1)` expected time per sample with no
//! precomputed tables, valid for any exponent `s > 0` including `s = 1`.
//! The implementation mirrors the well-tested Apache Commons RNG
//! `RejectionInversionZipfSampler`, with numerically-stable `exp`/`ln1p`
//! helpers.
//!
//! Feature frequencies in text corpora (RCV1, newswire) and address
//! popularities in packet traces are classically Zipfian, which is exactly
//! the skew the paper's sketches exploit; every generator in this crate
//! leans on this sampler.

use rand::{Rng, RngExt};

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(X = k) ∝ k^{−s}`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(1.5) − h(1)`.
    h_integral_x1: f64,
    /// `H(n + 0.5)`.
    h_integral_n: f64,
    /// Cutoff for the fast-accept band.
    cut: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be nonempty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let h_integral_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, s);
        let cut = 2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Self {
            n,
            s,
            h_integral_x1,
            h_integral_n,
            cut,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    #[must_use]
    pub fn s(&self) -> f64 {
        self.s
    }

    /// `h(x) = x^{−s}`.
    #[inline]
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// `H(x) = ∫ h`: `(x^{1−s} − 1)/(1 − s)`, computed stably as
    /// `log_x · (e^{(1−s)·log_x} − 1)/((1−s)·log_x)` with the `s = 1`
    /// limit handled by the `(e^t − 1)/t` helper.
    #[inline]
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - s) * log_x) * log_x
    }

    /// Inverse of `H`.
    #[inline]
    fn h_integral_inverse(x: f64, s: f64) -> f64 {
        let mut t = x * (1.0 - s);
        if t < -1.0 {
            // Numerical guard from the reference implementation.
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// `ln(1+t)/t`, stable near 0.
    #[inline]
    fn helper1(t: f64) -> f64 {
        if t.abs() > 1e-8 {
            t.ln_1p() / t
        } else {
            1.0 - t * (0.5 - t * (1.0 / 3.0 - 0.25 * t))
        }
    }

    /// `(e^t − 1)/t`, stable near 0.
    #[inline]
    fn helper2(t: f64) -> f64 {
        if t.abs() > 1e-8 {
            t.exp_m1() / t
        } else {
            1.0 + t * 0.5 * (1.0 + t * (1.0 / 3.0) * (1.0 + 0.25 * t))
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            // u uniform in (h_integral_n, h_integral_x1]; note
            // h_integral_x1 ≥ h_integral of anything left of 1.5 minus h(1).
            let u =
                self.h_integral_n + rng.random::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.s);
            let k64 = x.round().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            if k64 - x <= self.cut
                || u >= Self::h_integral(k64 + 0.5, self.s) - Self::h(k64, self.s)
            {
                return k;
            }
        }
    }

    /// Exact probability mass of rank `k` (computed by summing the
    /// normalizer; `O(n)` — test/diagnostic use only).
    ///
    /// # Panics
    /// Panics if `k` is outside `1..=n`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n, "rank out of range");
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in [0.5, 1.0, 1.1, 2.0] {
            let z = Zipf::new(1000, s);
            for _ in 0..10_000 {
                let k = z.sample(&mut rng);
                assert!((1..=1000).contains(&k), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50u64;
        let z = Zipf::new(n, 1.2);
        let trials = 200_000;
        let mut counts = vec![0u32; n as usize + 1];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in 1..=5u64 {
            let emp = f64::from(counts[k as usize]) / f64::from(trials);
            let exact = z.pmf(k);
            assert!(
                (emp - exact).abs() < 0.01,
                "rank {k}: empirical {emp:.4} vs exact {exact:.4}"
            );
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(100, 1.1);
        let mut counts = vec![0u32; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max_rank = (1..=100).max_by_key(|&k| counts[k as usize]).unwrap();
        assert_eq!(max_rank, 1);
        assert!(counts[1] > counts[10] && counts[10] > counts[50]);
    }

    #[test]
    fn degenerate_single_rank() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = Zipf::new(1, 1.5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn exponent_one_special_case() {
        let mut rng = StdRng::seed_from_u64(5);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0u32; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let emp1 = f64::from(counts[1]) / 100_000.0;
        assert!((emp1 - z.pmf(1)).abs() < 0.01, "emp {emp1} vs {}", z.pmf(1));
    }

    #[test]
    fn chi_square_goodness_of_fit_small_support() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10u64;
        let z = Zipf::new(n, 1.5);
        let trials = 100_000u32;
        let mut counts = vec![0f64; n as usize + 1];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1.0;
        }
        let chi2: f64 = (1..=n)
            .map(|k| {
                let e = z.pmf(k) * f64::from(trials);
                (counts[k as usize] - e) * (counts[k as usize] - e) / e
            })
            .sum();
        // 9 dof, 99.9th percentile ≈ 27.9.
        assert!(chi2 < 27.9, "chi-square {chi2:.1}");
    }

    #[test]
    fn large_support_does_not_hang() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipf::new(1 << 22, 1.1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1 << 22).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "support must be nonempty")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
