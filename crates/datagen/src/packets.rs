//! Synthetic paired packet streams with planted relative deltoids,
//! standing in for the CAIDA OC-48 trace of §8.2.
//!
//! Two concurrent streams share a Zipfian address population. A planted
//! *deltoid set* of addresses appears `ratio`× more often in the outbound
//! stream than the inbound one (implemented by thinning: a deltoid
//! candidate drawn for the inbound side is kept with probability
//! `1/ratio`), so the ground-truth occurrence ratio of every address is
//! known by construction and can also be measured exactly from the emitted
//! events.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Which stream an event belongs to (outbound source IPs vs inbound
/// destination IPs in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSide {
    /// The positive-class stream (outbound).
    Outbound,
    /// The negative-class stream (inbound).
    Inbound,
}

/// One observed packet: an address on one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketEvent {
    /// Address identifier (stands in for a 32-bit IP).
    pub addr: u32,
    /// Stream side.
    pub side: StreamSide,
}

/// Configuration for [`PacketTraceGen`].
#[derive(Debug, Clone, Copy)]
pub struct PacketTraceConfig {
    /// Address population size.
    pub n_addrs: u32,
    /// Zipf exponent of address popularity.
    pub zipf_s: f64,
    /// Number of planted deltoid addresses.
    pub n_deltoids: usize,
    /// Outbound:inbound occurrence ratio of deltoid addresses (> 1).
    pub ratio: f64,
    /// Deltoid placement stride: deltoids are ranks `stride, 2·stride, …`
    /// so they span the popularity spectrum.
    pub stride: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PacketTraceConfig {
    fn default() -> Self {
        Self {
            n_addrs: 1 << 17,
            zipf_s: 1.05,
            n_deltoids: 256,
            ratio: 256.0,
            stride: 37,
            seed: 0,
        }
    }
}

/// Generator of paired packet streams (see module docs).
#[derive(Debug)]
pub struct PacketTraceGen {
    cfg: PacketTraceConfig,
    zipf: Zipf,
    rng: StdRng,
    /// Sorted deltoid address ids.
    deltoids: Vec<u32>,
}

impl PacketTraceGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if `ratio <= 1` or the deltoid set does not fit the
    /// population.
    #[must_use]
    pub fn new(cfg: PacketTraceConfig) -> Self {
        assert!(cfg.ratio > 1.0, "deltoid ratio must exceed 1");
        assert!(
            (cfg.n_deltoids as u64) * u64::from(cfg.stride) < u64::from(cfg.n_addrs),
            "deltoid set exceeds address population"
        );
        let deltoids: Vec<u32> = (1..=cfg.n_deltoids as u32)
            .map(|j| j * cfg.stride)
            .collect();
        Self {
            zipf: Zipf::new(u64::from(cfg.n_addrs), cfg.zipf_s),
            rng: StdRng::seed_from_u64(cfg.seed),
            deltoids,
            cfg,
        }
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &PacketTraceConfig {
        &self.cfg
    }

    /// The planted deltoid addresses (sorted ascending).
    #[must_use]
    pub fn deltoids(&self) -> &[u32] {
        &self.deltoids
    }

    /// Whether `addr` is a planted deltoid.
    #[must_use]
    pub fn is_deltoid(&self, addr: u32) -> bool {
        self.deltoids.binary_search(&addr).is_ok()
    }

    /// Draws the next packet event.
    pub fn next_event(&mut self) -> PacketEvent {
        loop {
            let side = if self.rng.random::<bool>() {
                StreamSide::Outbound
            } else {
                StreamSide::Inbound
            };
            let addr = (self.zipf.sample(&mut self.rng) - 1) as u32;
            if side == StreamSide::Inbound
                && self.is_deltoid(addr)
                && self.rng.random::<f64>() >= 1.0 / self.cfg.ratio
            {
                // Thin deltoids out of the inbound stream.
                continue;
            }
            return PacketEvent { addr, side };
        }
    }

    /// Materializes `n` events.
    #[must_use]
    pub fn take(&mut self, n: usize) -> Vec<PacketEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PacketTraceGen {
        PacketTraceGen::new(PacketTraceConfig {
            n_addrs: 4096,
            zipf_s: 1.05,
            n_deltoids: 16,
            ratio: 16.0,
            stride: 5,
            seed: 1,
        })
    }

    #[test]
    fn events_are_in_range() {
        let mut g = small();
        for _ in 0..1000 {
            let e = g.next_event();
            assert!(e.addr < 4096);
        }
    }

    #[test]
    fn deltoids_skew_to_outbound() {
        let mut g = small();
        let mut out = 0u32;
        let mut inb = 0u32;
        for e in g.take(400_000) {
            if g_is_deltoid_static(&g, e.addr) {
                match e.side {
                    StreamSide::Outbound => out += 1,
                    StreamSide::Inbound => inb += 1,
                }
            }
        }
        assert!(inb > 0, "need some inbound deltoid mass to form a ratio");
        let ratio = f64::from(out) / f64::from(inb);
        assert!(
            ratio > 8.0 && ratio < 32.0,
            "aggregate deltoid ratio {ratio:.1}, expected ≈16"
        );
    }

    fn g_is_deltoid_static(g: &PacketTraceGen, addr: u32) -> bool {
        g.is_deltoid(addr)
    }

    #[test]
    fn non_deltoids_are_balanced() {
        let mut g = small();
        let mut out = 0u64;
        let mut inb = 0u64;
        for e in g.take(200_000) {
            if !g.is_deltoid(e.addr) {
                match e.side {
                    StreamSide::Outbound => out += 1,
                    StreamSide::Inbound => inb += 1,
                }
            }
        }
        let ratio = out as f64 / inb as f64;
        assert!((ratio - 1.0).abs() < 0.05, "non-deltoid ratio {ratio:.3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small().take(100);
        let b = small().take(100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ratio must exceed 1")]
    fn unit_ratio_panics() {
        let _ = PacketTraceGen::new(PacketTraceConfig {
            ratio: 1.0,
            ..PacketTraceConfig::default()
        });
    }
}
