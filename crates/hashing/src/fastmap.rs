//! A fast `BuildHasher` for internal integer-keyed hash maps.
//!
//! The standard library's SipHash is robust against adversarial keys but
//! slow for the hot integer-keyed maps inside Space-Saving and the
//! truncation baselines (see the Rust Performance Book's hashing chapter).
//! Keys here are feature identifiers, never attacker-controlled, so a
//! SplitMix64 finalizer is both sufficient and ~5× faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::mix::splitmix64;

/// A [`Hasher`] that mixes the written bytes with SplitMix64.
///
/// Intended for fixed-width integer keys; `write` folds arbitrary byte
/// streams 8 bytes at a time so string keys still work correctly (if more
/// slowly than a dedicated string hash).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = splitmix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = splitmix64(self.state ^ u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = splitmix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast integer hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with the fast integer hasher.
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<u32, f64> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, f64::from(i) * 0.5);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(f64::from(i) * 0.5)));
        }
        assert!(m.remove(&500).is_some());
        assert!(!m.contains_key(&500));
    }

    #[test]
    fn set_distinguishes_keys() {
        let mut s: FastHashSet<u64> = FastHashSet::default();
        for i in 0..10_000u64 {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn byte_stream_hashing_distinguishes_lengths() {
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let mut outs = std::collections::HashSet::new();
        for s in ["", "a", "ab", "abc", "abcdefgh", "abcdefghi"] {
            let mut h = bh.build_hasher();
            h.write(s.as_bytes());
            h.write_u8(0xFF); // length-extension guard as std does
            outs.insert(h.finish());
        }
        assert_eq!(outs.len(), 6);
    }
}
