//! Hash families used throughout the WM-Sketch reproduction.
//!
//! The paper's sketches need, per sketch row `j`, a pair of hash functions
//! `h_j : [d] -> [width]` (bucket assignment) and `σ_j : [d] -> {-1, +1}`
//! (random sign). The theoretical analysis assumes `Θ(log(d/δ))`-wise
//! independence, but the authors' implementation — and ours, by default —
//! uses fast 3-wise-independent **tabulation hashing** (paper, Appendix B).
//! For theory-faithful experiments we also provide a genuinely k-wise
//! independent **polynomial hash family** over the Mersenne prime `2^61 - 1`
//! (Carter–Wegman construction).
//!
//! String features (e.g. token bigrams in the streaming-PMI application,
//! §8.3 of the paper) are first reduced to 32-bit identifiers with
//! **MurmurHash3 (x86_32)**, exactly as the reference implementation does.
//!
//! Everything here is deterministic given a seed, which keeps every
//! experiment in this repository reproducible.

#![warn(missing_docs)]

pub mod codec;
pub mod fastmap;
pub mod mix;
pub mod murmur3;
pub mod poly;
pub mod row_hasher;
pub mod tabulation;

pub use codec::{CodecError, Reader, SnapshotCodec, Writer};
pub use fastmap::{FastBuildHasher, FastHashMap, FastHashSet};
pub use mix::{fast_range, splitmix64, SplitMix64};
pub use murmur3::murmur3_32;
pub use poly::PolyHash;
pub use row_hasher::{BucketSign, CoordPlan, HashFamilyKind, RowHasher, RowHashers};
pub use tabulation::TabulationHash;
