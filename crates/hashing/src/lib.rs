//! Hash families used throughout the WM-Sketch reproduction.
//!
//! The paper's sketches need, per sketch row `j`, a pair of hash functions
//! `h_j : [d] -> [width]` (bucket assignment) and `σ_j : [d] -> {-1, +1}`
//! (random sign). The theoretical analysis assumes `Θ(log(d/δ))`-wise
//! independence, but the authors' implementation — and ours, by default —
//! uses fast 3-wise-independent **tabulation hashing** (paper, Appendix B).
//! For theory-faithful experiments we also provide a genuinely k-wise
//! independent **polynomial hash family** over the Mersenne prime `2^61 - 1`
//! (Carter–Wegman construction).
//!
//! String features (e.g. token bigrams in the streaming-PMI application,
//! §8.3 of the paper) are first reduced to 32-bit identifiers with
//! **MurmurHash3 (x86_32)**, exactly as the reference implementation does.
//!
//! Everything here is deterministic given a seed, which keeps every
//! experiment in this repository reproducible.
//!
//! # SIMD kernel dispatch policy
//!
//! The update hot paths (margin gathers, gradient scatters, median-buffer
//! fills, batch plan hashing) run through the kernels in [`simd`], which
//! resolve a backend **once per kernel call** in this order:
//!
//! 1. a process-local override installed with [`simd::force_backend`]
//!    (differential tests and the throughput bench pin backends this way);
//! 2. the `WMSKETCH_FORCE_SCALAR` environment variable — any value other
//!    than `0`/empty forces the scalar backend for the whole process, the
//!    escape hatch for exercising the fallback on AVX2 hosts — and its
//!    counterpart `WMSKETCH_FORCE_AVX2`, which skips calibration and pins
//!    AVX2 where supported;
//! 3. runtime CPU detection **plus a one-shot profitability
//!    calibration** per kernel class ([`simd::active_backend`] for the
//!    coordinate kernels, [`simd::active_hash_backend`] for batch plan
//!    hashing): on hosts that report AVX2, each class times a short
//!    deterministic micro-trial of both implementations and adopts AVX2
//!    only if it clearly beats scalar. "Has AVX2" does not imply "AVX2
//!    gathers are fast" — several server microarchitectures run
//!    gather-style access microcoded at a ~2× loss, and on those the
//!    calibrated default stays scalar (`active_backend()` reports which
//!    won; the throughput bench records it as `cpu_features`).
//!
//! Every backend is **bit-identical** by contract: order-sensitive
//! reductions stay in scalar element order, scatters preserve scalar
//! read-modify-write order under offset collisions (per-group conflict
//! check with a scalar spill), and per-element arithmetic uses the exact
//! scalar expression shapes (no FMA contraction). Polynomial-family row
//! hashing always runs scalar (its `2^61 − 1` field arithmetic needs
//! 64×64 multiplies AVX2 lacks); tabulation hashing batches four keys per
//! table gather in [`RowHashers::fill_plan`]. Sketches whose depth is 1
//! additionally skip the median machinery entirely (a 1-row "median" is
//! just `sign · cell`); that fast path lives with the consumers in
//! `wmsketch-sketch` and `wmsketch-core`.

#![warn(missing_docs)]

pub mod codec;
pub mod fastmap;
pub mod mix;
pub mod murmur3;
pub mod poly;
pub mod row_hasher;
pub mod simd;
pub mod tabulation;

pub use codec::{CodecError, Reader, SnapshotCodec, Writer};
pub use fastmap::{FastBuildHasher, FastHashMap, FastHashSet};
pub use mix::{fast_range, splitmix64, SplitMix64};
pub use murmur3::murmur3_32;
pub use poly::PolyHash;
pub use row_hasher::{BucketSign, CoordPlan, HashFamilyKind, RowHasher, RowHashers};
pub use simd::Backend;
pub use tabulation::TabulationHash;
