//! Byte-level foundation of the `WMS1` snapshot codec.
//!
//! Sketch snapshots must survive process boundaries — checkpointed to
//! disk, shipped between ingest nodes, and summed on an aggregator (exact
//! by Count-Sketch linearity) — so the format is a hand-rolled,
//! self-describing, versioned little-endian binary layout with no external
//! serialization dependencies:
//!
//! ```text
//! snapshot := magic  (4 bytes, b"WMS1" — the trailing digit is the
//!                     format version)
//!            | kind   (u8, which structure the payload encodes)
//!            | flags  (u8: bit 0 = delta record, bit 1 = CRC-sealed)
//!            | body   (a sequence of tagged sections)
//!            | footer (8 bytes, only when flags bit 1 is set: the
//!                      little-endian CRC-64/XZ of everything above)
//! section  := tag (u8) | len (u32 LE, bytes of payload) | payload
//! ```
//!
//! Records this build encodes are always **sealed**: [`seal_record`] sets
//! [`FLAG_CRC`] and appends the [`crc64`] footer, and every decode path
//! runs [`verify_integrity`] first — a torn checkpoint write or a flipped
//! bit surfaces as [`CodecError::ChecksumMismatch`] instead of a
//! silently-wrong model. Legacy footer-less records (flag unset) still
//! decode for compatibility.
//!
//! All integers are little-endian; `f64` values are stored as the raw
//! little-endian bytes of [`f64::to_bits`], so round-trips are
//! bit-identical (including negative zero; structure decoders additionally
//! require cell and weight values to be finite, since legitimate sketch
//! state always is and a crafted NaN would panic estimator code far from
//! the trust boundary). Each
//! structure's body layout is documented on its `SnapshotCodec`
//! implementation; the byte-by-byte reference for the whole family lives
//! in the `wmsketch-serve` crate docs.
//!
//! This module lives in `wmsketch-hashing` because every crate in the
//! workspace already depends on it and because the one piece of state
//! every snapshot must carry for merge compatibility — the hash-family
//! kind and seed that pin the random projection — is owned by this crate.
//! The concrete `SnapshotCodec` implementations live next to the private
//! fields they serialize: `CountSketch`/`CountMinSketch` in
//! `wmsketch-sketch`, `WmSketch`/`AwmSketch` in `wmsketch-core`, and the
//! sub-record codecs (`ScaleState`, `LearningRate`, `LossKind`,
//! `TopKWeights`) in `wmsketch-learn` / `wmsketch-hh`.

use crate::row_hasher::HashFamilyKind;

/// Magic prefix of every snapshot; the trailing ASCII digit is the format
/// version.
pub const MAGIC: [u8; 4] = *b"WMS1";

/// Envelope flags bit marking a **delta record**: a sparse overwrite of
/// the cells/heap/state that changed since a watermark clock, applied to
/// a base snapshot of the same kind via `apply_delta`. Full snapshots
/// keep flags 0, so every pre-delta decoder rejects a delta record with
/// a typed error instead of misparsing it as full state.
pub const FLAG_DELTA: u8 = 0x01;

/// Envelope flags bit marking a record **sealed with the CRC-64 integrity
/// footer**: the last [`FOOTER_LEN`] bytes of the record are the
/// little-endian [`crc64`] of everything before them (envelope + body).
/// Because presence is declared in the envelope rather than sniffed from
/// trailing bytes, truncating the footer off a sealed record cannot
/// silently downgrade it to a legacy record — [`verify_integrity`]
/// rejects it. Legacy records (flag unset) decode unchanged.
pub const FLAG_CRC: u8 = 0x02;

/// Byte length of the CRC-64 integrity footer appended by
/// [`seal_record`].
pub const FOOTER_LEN: usize = 8;

/// Byte offset of the envelope flags byte inside a record
/// (`magic (4) | kind (1) | flags (1)`).
const FLAGS_OFFSET: usize = 5;

/// CRC-64/XZ generator polynomial (ECMA-182, reflected form).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// Byte-at-a-time CRC-64 table, built at compile time — the codec stays
/// zero-dependency.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ checksum of `bytes` (reflected ECMA-182 polynomial, init and
/// xorout `!0`). Hand-rolled so snapshot integrity needs no external
/// dependency; any single-byte corruption and any burst error shorter
/// than 64 bits is guaranteed caught.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Seals a complete `WMS1` record (envelope + body) with the integrity
/// footer: sets [`FLAG_CRC`] in the envelope flags, then appends the
/// [`crc64`] of everything before the footer as 8 little-endian bytes.
///
/// # Panics
/// Panics if `bytes` is shorter than the 6-byte envelope — sealing is for
/// records this codec just produced, not untrusted input.
pub fn seal_record(bytes: &mut Vec<u8>) {
    assert!(
        bytes.len() > FLAGS_OFFSET,
        "cannot seal a non-record buffer"
    );
    bytes[FLAGS_OFFSET] |= FLAG_CRC;
    let crc = crc64(bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
}

/// Recomputes the footer of an already-sealed record in place. For
/// inspection tools and tests that deliberately patch record bytes and
/// need the decoder's *structural* validation — not the CRC — to be the
/// check that fires.
///
/// # Panics
/// Panics if `bytes` is shorter than envelope + footer or [`FLAG_CRC`] is
/// not set — resealing only applies to records [`seal_record`] produced.
pub fn reseal_record(bytes: &mut [u8]) {
    assert!(
        bytes.len() > FLAGS_OFFSET + FOOTER_LEN && bytes[FLAGS_OFFSET] & FLAG_CRC != 0,
        "cannot reseal an unsealed record"
    );
    let body_len = bytes.len() - FOOTER_LEN;
    let crc = crc64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies the integrity footer of a `WMS1` record and returns the
/// record with the footer stripped, ready for body decoding.
///
/// Legacy records (envelope [`FLAG_CRC`] unset) pass through unchanged —
/// every decode path stays compatible with pre-footer snapshots. Sealed
/// records are rejected unless the trailing CRC matches, so a torn write,
/// a flipped bit, or a truncated tail surfaces as a typed error instead
/// of a silently-wrong model.
///
/// # Errors
/// Everything [`peek_flags`] rejects on a malformed envelope;
/// [`CodecError::Truncated`] when a sealed record is shorter than
/// envelope + footer; [`CodecError::ChecksumMismatch`] when the stored
/// CRC disagrees with the recomputed one.
pub fn verify_integrity(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if peek_flags(bytes)? & FLAG_CRC == 0 {
        return Ok(bytes);
    }
    let min = FLAGS_OFFSET + 1 + FOOTER_LEN;
    if bytes.len() < min {
        return Err(CodecError::Truncated {
            needed: min,
            have: bytes.len(),
        });
    }
    let (record, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let stored = u64::from_le_bytes(footer.try_into().expect("8-byte footer"));
    let computed = crc64(record);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(record)
}

/// Payload-kind byte for a `CountSketch` snapshot.
pub const KIND_COUNT_SKETCH: u8 = 0x01;
/// Payload-kind byte for a `CountMinSketch` snapshot.
pub const KIND_COUNT_MIN: u8 = 0x02;
/// Payload-kind byte for a `WmSketch` snapshot.
pub const KIND_WM: u8 = 0x03;
/// Payload-kind byte for an `AwmSketch` snapshot.
pub const KIND_AWM: u8 = 0x04;
/// Payload-kind byte for a `MulticlassAwmSketch` snapshot (one AWM-Sketch
/// per class).
pub const KIND_MULTICLASS_AWM: u8 = 0x05;

// Kind tags 0x10.. identify learners that have *no* snapshot codec (their
// state is exact and unmergeable — there is nothing linear to ship). They
// exist so every learner behind the `DynLearner` facade can report a kind
// aligned with this registry; `decode_any` never sees them on the wire.

/// Kind tag for the Simple Truncation baseline (no snapshot codec).
pub const KIND_SIMPLE_TRUNCATION: u8 = 0x10;
/// Kind tag for the Probabilistic Truncation baseline (no snapshot codec).
pub const KIND_PROB_TRUNCATION: u8 = 0x11;
/// Kind tag for the Space-Saving Frequent baseline (no snapshot codec).
pub const KIND_SPACE_SAVING: u8 = 0x12;
/// Kind tag for the Count-Min Frequent-Features baseline (no snapshot
/// codec).
pub const KIND_CM_CLASSIFIER: u8 = 0x13;
/// Kind tag for the feature-hashing baseline (no snapshot codec).
pub const KIND_FEATURE_HASHING: u8 = 0x14;

/// A typed decoding failure. Decoders never panic on untrusted bytes —
/// truncated, corrupted, and foreign buffers all map to a variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The leading magic bytes belong to some other format entirely.
    BadMagic {
        /// The four bytes found where [`MAGIC`] was expected.
        got: [u8; 4],
    },
    /// A `WMS`-family snapshot of a format version this build cannot read.
    UnsupportedVersion(u8),
    /// The payload-kind byte did not match the structure being decoded.
    WrongKind {
        /// Kind expected by the caller.
        expected: u8,
        /// Kind found in the envelope.
        got: u8,
    },
    /// A section tag did not match the layout.
    BadSection {
        /// Tag the layout requires next.
        expected: u8,
        /// Tag found.
        got: u8,
    },
    /// A field held a value the structure's invariants reject.
    Invalid(&'static str),
    /// Decoding consumed the layout but bytes remained.
    TrailingBytes(usize),
    /// A well-formed envelope declared a kind no registered decoder
    /// handles (see [`decode_any`]).
    UnknownKind(u8),
    /// A record sealed with the CRC-64 integrity footer ([`FLAG_CRC`])
    /// failed verification — the bytes were corrupted between encode and
    /// decode (torn write, flipped bit, truncated tail).
    ChecksumMismatch {
        /// The CRC stored in the footer.
        stored: u64,
        /// The CRC recomputed over the record.
        computed: u64,
    },
    /// A delta record's watermark interval does not start at the base
    /// model's clock — applying it would skip or double-apply updates.
    /// Idempotent re-delivery handling (skip when `got < expected`)
    /// belongs to the replication layer, which sees this typed rejection
    /// instead of corrupted state.
    DeltaGap {
        /// The base model's clock (the only valid `from_clock`).
        expected: u64,
        /// The delta's `from_clock`.
        got: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated snapshot: needed {needed} bytes, have {have}")
            }
            CodecError::BadMagic { got } => write!(f, "not a WMS snapshot (magic {got:02x?})"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported WMS format version byte {v:#04x}")
            }
            CodecError::WrongKind { expected, got } => {
                write!(
                    f,
                    "wrong snapshot kind: expected {expected:#04x}, got {got:#04x}"
                )
            }
            CodecError::BadSection { expected, got } => {
                write!(
                    f,
                    "bad section tag: expected {expected:#04x}, got {got:#04x}"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot body"),
            CodecError::UnknownKind(k) => {
                write!(f, "no registered decoder for snapshot kind {k:#04x}")
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "integrity footer mismatch: stored CRC {stored:#018x}, computed {computed:#018x}"
                )
            }
            CodecError::DeltaGap { expected, got } => {
                write!(
                    f,
                    "delta gap: record starts at clock {got}, base model is at clock {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte writer with section framing.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a raw byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i8` (two's complement byte).
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Appends an `f64` as the little-endian bytes of its bit pattern
    /// (bit-exact round trip, including −0.0 and NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes the snapshot envelope: magic, payload kind, reserved flags.
    pub fn put_envelope(&mut self, kind: u8) {
        self.put_bytes(&MAGIC);
        self.put_u8(kind);
        self.put_u8(0); // reserved flags
    }

    /// Writes a **delta-record** envelope: magic, payload kind, and the
    /// [`FLAG_DELTA`] flags bit.
    pub fn put_delta_envelope(&mut self, kind: u8) {
        self.put_bytes(&MAGIC);
        self.put_u8(kind);
        self.put_u8(FLAG_DELTA);
    }

    /// Opens a tagged section, returning a mark for
    /// [`Writer::end_section`]. The length field is back-patched when the
    /// section closes.
    #[must_use]
    pub fn begin_section(&mut self, tag: u8) -> usize {
        self.put_u8(tag);
        self.put_u32(0);
        self.buf.len()
    }

    /// Closes the section opened at `mark`, patching its length field.
    ///
    /// # Panics
    /// Panics if the section payload exceeds `u32::MAX` bytes or `mark`
    /// does not come from [`Writer::begin_section`].
    pub fn end_section(&mut self, mark: usize) {
        let len = self.buf.len() - mark;
        let len32 = u32::try_from(len).expect("section exceeds u32::MAX bytes");
        self.buf[mark - 4..mark].copy_from_slice(&len32.to_le_bytes());
    }
}

/// A bounds-checked little-endian cursor over an encoded snapshot.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if the buffer is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Takes an `i8`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if the buffer is exhausted.
    pub fn take_i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.take_u8()? as i8)
    }

    /// Takes an `f64` stored as its raw bit pattern.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads and validates the snapshot envelope, returning an error if
    /// the magic, version, kind, or flags do not match.
    ///
    /// # Errors
    /// [`CodecError::BadMagic`] for foreign buffers,
    /// [`CodecError::UnsupportedVersion`] for `WMS` snapshots of another
    /// version, [`CodecError::WrongKind`] on a kind mismatch.
    pub fn expect_envelope(&mut self, kind: u8) -> Result<(), CodecError> {
        let got = take_magic_and_kind(self)?;
        if got != kind {
            return Err(CodecError::WrongKind {
                expected: kind,
                got,
            });
        }
        if self.take_u8()? & !FLAG_CRC != 0 {
            return Err(CodecError::Invalid(
                "full-snapshot envelope flags must be 0 (or CRC-sealed)",
            ));
        }
        Ok(())
    }

    /// Reads and validates a **delta-record** envelope ([`FLAG_DELTA`]
    /// set), returning an error if the magic, version, kind, or flags do
    /// not match.
    ///
    /// # Errors
    /// Everything [`Reader::expect_envelope`] rejects, plus
    /// [`CodecError::Invalid`] when the buffer is a full snapshot (flags
    /// 0) or carries unknown flag bits.
    pub fn expect_delta_envelope(&mut self, kind: u8) -> Result<(), CodecError> {
        let got = take_magic_and_kind(self)?;
        if got != kind {
            return Err(CodecError::WrongKind {
                expected: kind,
                got,
            });
        }
        if self.take_u8()? & !FLAG_CRC != FLAG_DELTA {
            return Err(CodecError::Invalid(
                "expected a delta record (FLAG_DELTA envelope flags)",
            ));
        }
        Ok(())
    }

    /// Reads a section header, checks its tag, and returns a sub-reader
    /// restricted to the section payload (the parent cursor advances past
    /// the whole section).
    ///
    /// # Errors
    /// [`CodecError::BadSection`] on a tag mismatch,
    /// [`CodecError::Truncated`] if the declared length overruns the
    /// buffer.
    pub fn expect_section(&mut self, tag: u8) -> Result<Reader<'a>, CodecError> {
        let got = self.take_u8()?;
        if got != tag {
            return Err(CodecError::BadSection { expected: tag, got });
        }
        let len = self.take_u32()? as usize;
        Ok(Reader::new(self.take_bytes(len)?))
    }

    /// Asserts the reader is fully consumed.
    ///
    /// # Errors
    /// [`CodecError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Encodes an `f64` array as a tagged section:
/// `tag | len (u32) | count (u64) | count × f64` (raw bit patterns).
/// Shared by every cell-carrying snapshot (Count-Sketch, Count-Min,
/// WM-/AWM-Sketch).
pub fn put_f64_section(w: &mut Writer, tag: u8, values: &[f64]) {
    let mark = w.begin_section(tag);
    w.put_u64(values.len() as u64);
    for &v in values {
        w.put_f64(v);
    }
    w.end_section(mark);
}

/// Decodes an array written by [`put_f64_section`], validating the stored
/// count against `expected` and bounding the allocation by the section's
/// actual length (so a corrupted count cannot demand an absurd
/// reservation).
///
/// Every value must be finite: legitimately-trained sketch cells always
/// are, and a crafted NaN cell would otherwise decode cleanly and then
/// panic the estimator's median/heap code far from the trust boundary
/// (on a serving node: under the learner lock, wedging the process).
///
/// # Errors
/// Any [`CodecError`] on a tag mismatch, count mismatch, truncation, or a
/// non-finite value.
pub fn take_f64_section(
    r: &mut Reader<'_>,
    tag: u8,
    expected: usize,
) -> Result<Vec<f64>, CodecError> {
    let mut s = r.expect_section(tag)?;
    let n = s.take_u64()?;
    if n != expected as u64 {
        return Err(CodecError::Invalid("array count does not match header"));
    }
    if s.remaining() < expected.saturating_mul(8) {
        return Err(CodecError::Truncated {
            needed: expected.saturating_mul(8),
            have: s.remaining(),
        });
    }
    let mut values = Vec::with_capacity(expected);
    for _ in 0..expected {
        let v = s.take_f64()?;
        if !v.is_finite() {
            return Err(CodecError::Invalid("non-finite cell value"));
        }
        values.push(v);
    }
    s.finish()?;
    Ok(values)
}

/// Hash-family kind tag: tabulation.
const FAMILY_TABULATION: u8 = 0;
/// Hash-family kind tag: k-wise polynomial.
const FAMILY_POLYNOMIAL: u8 = 1;

/// Largest polynomial independence level a snapshot may declare.
/// `PolyHash::new(k)` allocates and computes `O(k)` state per sketch row,
/// so an unbounded decoded `k` would let a crafted snapshot demand an
/// absurd allocation; real configurations use `k = Θ(log d)` (single
/// digits to low tens).
pub const MAX_POLY_INDEPENDENCE: usize = 512;

/// Encodes a [`HashFamilyKind`] (one tag byte, plus the independence level
/// for the polynomial family).
pub fn put_hash_family(w: &mut Writer, kind: HashFamilyKind) {
    match kind {
        HashFamilyKind::Tabulation => w.put_u8(FAMILY_TABULATION),
        HashFamilyKind::Polynomial(k) => {
            w.put_u8(FAMILY_POLYNOMIAL);
            w.put_u32(u32::try_from(k).expect("independence level fits u32"));
        }
    }
}

/// Decodes a [`HashFamilyKind`] written by [`put_hash_family`].
///
/// # Errors
/// [`CodecError::Invalid`] on an unknown family tag or a polynomial
/// independence level outside `1..=`[`MAX_POLY_INDEPENDENCE`];
/// [`CodecError::Truncated`] on short input.
pub fn take_hash_family(r: &mut Reader<'_>) -> Result<HashFamilyKind, CodecError> {
    match r.take_u8()? {
        FAMILY_TABULATION => Ok(HashFamilyKind::Tabulation),
        FAMILY_POLYNOMIAL => {
            let k = r.take_u32()? as usize;
            if k == 0 {
                return Err(CodecError::Invalid("polynomial independence level is 0"));
            }
            if k > MAX_POLY_INDEPENDENCE {
                return Err(CodecError::Invalid(
                    "polynomial independence level is implausibly large",
                ));
            }
            Ok(HashFamilyKind::Polynomial(k))
        }
        _ => Err(CodecError::Invalid("unknown hash-family tag")),
    }
}

/// A structure that round-trips through a standalone `WMS1` snapshot.
///
/// Implementations serialize *every* field that determines future
/// behavior — cells, seeds, hash-family kind, scale state, heap contents —
/// so a decoded instance is merge-compatible with its origin and evolves
/// identically under further updates.
pub trait SnapshotCodec: Sized {
    /// The envelope payload-kind byte identifying this structure.
    const KIND: u8;

    /// Appends the body sections (everything after the envelope).
    fn encode_body(&self, w: &mut Writer);

    /// Decodes the body sections written by
    /// [`SnapshotCodec::encode_body`].
    ///
    /// # Errors
    /// Any [`CodecError`] on truncated, corrupted, or invalid input.
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes a complete snapshot: envelope plus body, sealed with the
    /// CRC-64 integrity footer ([`seal_record`]).
    #[must_use]
    fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_envelope(Self::KIND);
        self.encode_body(&mut w);
        let mut bytes = w.into_bytes();
        seal_record(&mut bytes);
        bytes
    }

    /// Decodes a complete snapshot, rejecting trailing bytes. Sealed
    /// records ([`FLAG_CRC`]) are CRC-verified first; legacy footer-less
    /// records decode unchanged.
    ///
    /// # Errors
    /// Any [`CodecError`]; never panics on untrusted input.
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let bytes = verify_integrity(bytes)?;
        let mut r = Reader::new(bytes);
        r.expect_envelope(Self::KIND)?;
        let out = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(out)
    }
}

/// Reads and validates the magic + format version, returning the kind
/// byte — the shared front half of [`Reader::expect_envelope`] and
/// [`peek_kind`]. One copy on purpose: these are hostile-input
/// trust-boundary checks, and a version bump touched in one path but not
/// the other would make kind-probed dispatch disagree with the typed
/// decoders.
fn take_magic_and_kind(r: &mut Reader<'_>) -> Result<u8, CodecError> {
    let magic: [u8; 4] = r.take_bytes(4)?.try_into().expect("4-byte slice");
    if magic != MAGIC {
        if magic[..3] == MAGIC[..3] {
            return Err(CodecError::UnsupportedVersion(magic[3]));
        }
        return Err(CodecError::BadMagic { got: magic });
    }
    r.take_u8()
}

/// Reads the envelope far enough to report which structure `bytes`
/// encodes, without decoding the body: validates the magic and format
/// version and returns the kind byte.
///
/// # Errors
/// [`CodecError::Truncated`] on a buffer shorter than the envelope,
/// [`CodecError::BadMagic`] on a foreign buffer,
/// [`CodecError::UnsupportedVersion`] on a `WMS` snapshot of another
/// version.
pub fn peek_kind(bytes: &[u8]) -> Result<u8, CodecError> {
    take_magic_and_kind(&mut Reader::new(bytes))
}

/// Reads the envelope far enough to report the flags byte — the way a
/// transport decides whether `bytes` is a full snapshot (flags 0) or a
/// delta record ([`FLAG_DELTA`]) before dispatching to the matching
/// apply path.
///
/// # Errors
/// Everything [`peek_kind`] rejects, plus [`CodecError::Truncated`] when
/// the buffer ends before the flags byte.
pub fn peek_flags(bytes: &[u8]) -> Result<u8, CodecError> {
    let mut r = Reader::new(bytes);
    let _ = take_magic_and_kind(&mut r)?;
    r.take_u8()
}

/// Whether `bytes` is a well-formed-enough envelope carrying
/// [`FLAG_DELTA`].
///
/// # Errors
/// Everything [`peek_flags`] rejects.
pub fn is_delta_record(bytes: &[u8]) -> Result<bool, CodecError> {
    Ok(peek_flags(bytes)? & FLAG_DELTA != 0)
}

// Delta-record section tags. Tags 0x20.. are disjoint from every full-
// snapshot section tag (0x01–0x05) so a misrouted buffer fails on the
// first section header rather than deep inside a payload.

/// Delta section: `from_clock (u64) | to_clock (u64)` — the watermark
/// interval the record covers.
pub const DELTA_SECTION_HEAD: u8 = 0x20;
/// Delta section: sparse cell overwrites,
/// `count (u64) | count × (index u32, bits u64)` — raw `f64` bit
/// patterns of every stored cell whose bits changed inside the interval.
pub const DELTA_SECTION_CELLS: u8 = 0x21;
/// Delta section: the full post-interval mutable scalar state (update
/// clock + scale), identical in layout to the full snapshot's STATE
/// section.
pub const DELTA_SECTION_STATE: u8 = 0x22;
/// Delta section: `present (u8)` then, when 1, the full snapshot TOPK
/// payload replacing the base's heap; 0 means the heap did not change
/// inside the interval.
pub const DELTA_SECTION_TOPK: u8 = 0x23;
/// Delta section (multiclass): one embedded per-class delta body.
pub const DELTA_SECTION_CLASS: u8 = 0x24;

/// Encodes the sparse cell-overwrite section
/// ([`DELTA_SECTION_CELLS`]): each entry is the cell's index and the raw
/// bit pattern of its current stored value.
pub fn put_delta_cells(w: &mut Writer, cells: &[(u32, u64)]) {
    let mark = w.begin_section(DELTA_SECTION_CELLS);
    w.put_u64(cells.len() as u64);
    for &(idx, bits) in cells {
        w.put_u32(idx);
        w.put_u64(bits);
    }
    w.end_section(mark);
}

/// Decodes a [`put_delta_cells`] section, validating indices against
/// `cells` (the base sketch's cell count) and requiring every overwrite
/// value to be finite (stored cells of a legitimately trained sketch
/// always are).
///
/// # Errors
/// Any [`CodecError`] on a tag mismatch, truncation, an out-of-range
/// index, or a non-finite value.
pub fn take_delta_cells(r: &mut Reader<'_>, cells: usize) -> Result<Vec<(u32, u64)>, CodecError> {
    let mut s = r.expect_section(DELTA_SECTION_CELLS)?;
    let n = s.take_u64()?;
    if n > cells as u64 {
        return Err(CodecError::Invalid(
            "delta overwrites more cells than the sketch has",
        ));
    }
    let n = n as usize;
    if s.remaining() < n.saturating_mul(12) {
        return Err(CodecError::Truncated {
            needed: n.saturating_mul(12),
            have: s.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = s.take_u32()?;
        if idx as usize >= cells {
            return Err(CodecError::Invalid("delta cell index out of range"));
        }
        let bits = s.take_u64()?;
        if !f64::from_bits(bits).is_finite() {
            return Err(CodecError::Invalid("non-finite delta cell value"));
        }
        out.push((idx, bits));
    }
    s.finish()?;
    Ok(out)
}

/// One entry of a [`decode_any`] registry: the kind byte a decoder
/// handles, paired with the function that decodes a *complete* snapshot
/// (envelope included) of that kind.
///
/// The concrete decoders live in the crates that own the structures
/// (`wmsketch-sketch`, `wmsketch-core`), above this one in the dependency
/// graph — so kind dispatch is generic infrastructure here, and each
/// consumer supplies the registry of decoders it actually links.
pub struct AnyDecoder<T> {
    /// The envelope kind byte this decoder handles.
    pub kind: u8,
    /// Decodes a complete snapshot of that kind.
    pub decode: fn(&[u8]) -> Result<T, CodecError>,
}

/// Dispatches a `WMS1` buffer to the registered decoder matching its kind
/// byte.
///
/// This is the single entry point for callers that accept snapshots of
/// *any* kind — a serving node's model registry, an offline checkpoint
/// inspector — instead of hand-matching kind bytes at every call site.
///
/// # Errors
/// Whatever [`peek_kind`] rejects; [`CodecError::UnknownKind`] when no
/// registry entry matches; and any [`CodecError`] from the matched
/// decoder. Never panics on untrusted input.
pub fn decode_any<T>(bytes: &[u8], registry: &[AnyDecoder<T>]) -> Result<T, CodecError> {
    let kind = peek_kind(bytes)?;
    let entry = registry
        .iter()
        .find(|d| d.kind == kind)
        .ok_or(CodecError::UnknownKind(kind))?;
    (entry.decode)(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i8(-3);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i8().unwrap(), -3);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.take_u32(),
            Err(CodecError::Truncated { needed: 4, have: 2 })
        );
    }

    #[test]
    fn sections_nest_and_patch_lengths() {
        let mut w = Writer::new();
        let m = w.begin_section(0x10);
        w.put_u32(42);
        w.end_section(m);
        w.put_u8(0xFF); // trailing data outside the section
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut s = r.expect_section(0x10).unwrap();
        assert_eq!(s.take_u32().unwrap(), 42);
        s.finish().unwrap();
        assert_eq!(r.take_u8().unwrap(), 0xFF);
    }

    #[test]
    fn envelope_rejections_are_typed() {
        let mut w = Writer::new();
        w.put_envelope(KIND_WM);
        let good = w.into_bytes();

        let mut r = Reader::new(&good);
        r.expect_envelope(KIND_WM).unwrap();

        let mut foreign = good.clone();
        foreign[0] = b'P';
        assert!(matches!(
            Reader::new(&foreign).expect_envelope(KIND_WM),
            Err(CodecError::BadMagic { .. })
        ));

        let mut vnext = good.clone();
        vnext[3] = b'2';
        assert_eq!(
            Reader::new(&vnext).expect_envelope(KIND_WM),
            Err(CodecError::UnsupportedVersion(b'2'))
        );

        assert_eq!(
            Reader::new(&good).expect_envelope(KIND_AWM),
            Err(CodecError::WrongKind {
                expected: KIND_AWM,
                got: KIND_WM
            })
        );
    }

    #[test]
    fn hash_family_round_trip() {
        for kind in [
            HashFamilyKind::Tabulation,
            HashFamilyKind::Polynomial(4),
            HashFamilyKind::Polynomial(11),
        ] {
            let mut w = Writer::new();
            put_hash_family(&mut w, kind);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(take_hash_family(&mut r).unwrap(), kind);
            r.finish().unwrap();
        }
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            take_hash_family(&mut r),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn hash_family_rejects_implausible_independence_levels() {
        // A crafted snapshot must not be able to demand O(k) work and
        // allocation per row through an absurd polynomial k.
        let mut w = Writer::new();
        w.put_u8(1); // polynomial tag
        w.put_u32(u32::MAX - 1);
        let bytes = w.into_bytes();
        assert!(matches!(
            take_hash_family(&mut Reader::new(&bytes)),
            Err(CodecError::Invalid(_))
        ));
        let mut w = Writer::new();
        put_hash_family(&mut w, HashFamilyKind::Polynomial(MAX_POLY_INDEPENDENCE));
        let bytes = w.into_bytes();
        assert!(take_hash_family(&mut Reader::new(&bytes)).is_ok());
    }

    #[test]
    fn peek_kind_reads_envelope_without_body() {
        let mut w = Writer::new();
        w.put_envelope(KIND_AWM);
        w.put_u8(0xAB); // arbitrary body byte peek must not touch
        let bytes = w.into_bytes();
        assert_eq!(peek_kind(&bytes), Ok(KIND_AWM));
        assert!(matches!(
            peek_kind(&bytes[..3]),
            Err(CodecError::Truncated { .. })
        ));
        let mut foreign = bytes.clone();
        foreign[0] = b'X';
        assert!(matches!(
            peek_kind(&foreign),
            Err(CodecError::BadMagic { .. })
        ));
        let mut vnext = bytes;
        vnext[3] = b'9';
        assert_eq!(peek_kind(&vnext), Err(CodecError::UnsupportedVersion(b'9')));
    }

    #[test]
    fn decode_any_dispatches_by_kind_and_rejects_unregistered() {
        fn decode_tag(bytes: &[u8]) -> Result<u8, CodecError> {
            let mut r = Reader::new(bytes);
            r.expect_envelope(peek_kind(bytes)?)?;
            let v = r.take_u8()?;
            r.finish()?;
            Ok(v)
        }
        let registry = [
            AnyDecoder {
                kind: KIND_WM,
                decode: decode_tag,
            },
            AnyDecoder {
                kind: KIND_AWM,
                decode: decode_tag,
            },
        ];
        for (kind, body) in [(KIND_WM, 7u8), (KIND_AWM, 9)] {
            let mut w = Writer::new();
            w.put_envelope(kind);
            w.put_u8(body);
            assert_eq!(decode_any(&w.into_bytes(), &registry), Ok(body));
        }
        let mut w = Writer::new();
        w.put_envelope(KIND_COUNT_MIN);
        assert_eq!(
            decode_any(&w.into_bytes(), &registry),
            Err(CodecError::UnknownKind(KIND_COUNT_MIN))
        );
    }

    #[test]
    fn crc64_matches_reference_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn sealed_record_round_trips_and_rejects_corruption() {
        let mut w = Writer::new();
        w.put_envelope(KIND_WM);
        w.put_u64(0xABCD);
        let mut bytes = w.into_bytes();
        seal_record(&mut bytes);
        assert_eq!(bytes[FLAGS_OFFSET] & FLAG_CRC, FLAG_CRC);

        // Clean verification strips exactly the footer.
        let body = verify_integrity(&bytes).unwrap();
        assert_eq!(body.len(), bytes.len() - FOOTER_LEN);

        // Every single-byte corruption is rejected with a typed error.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                verify_integrity(&bad).is_err() || bad[FLAGS_OFFSET] & FLAG_CRC == 0,
                "corruption at byte {i} went unnoticed"
            );
        }

        // Truncating the footer off cannot downgrade to legacy: the flag
        // still declares a footer, and the tail of the body is not it.
        let torn = &bytes[..bytes.len() - FOOTER_LEN];
        assert!(matches!(
            verify_integrity(torn),
            Err(CodecError::ChecksumMismatch { .. }) | Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn legacy_footerless_records_pass_through() {
        let mut w = Writer::new();
        w.put_envelope(KIND_AWM);
        w.put_u64(7);
        let bytes = w.into_bytes();
        assert_eq!(verify_integrity(&bytes).unwrap(), &bytes[..]);
        let mut r = Reader::new(&bytes);
        r.expect_envelope(KIND_AWM).unwrap();
    }

    #[test]
    fn sealed_envelopes_decode_with_either_flag_state() {
        let mut w = Writer::new();
        w.put_delta_envelope(KIND_WM);
        let mut bytes = w.into_bytes();
        seal_record(&mut bytes);
        let record = verify_integrity(&bytes).unwrap();
        let mut r = Reader::new(record);
        r.expect_delta_envelope(KIND_WM).unwrap();
        assert!(is_delta_record(&bytes).unwrap());
    }

    #[test]
    fn section_length_overrun_is_truncation() {
        let mut w = Writer::new();
        let m = w.begin_section(0x01);
        w.put_u64(1);
        w.end_section(m);
        let mut bytes = w.into_bytes();
        // Corrupt the declared length upward: the section now overruns.
        bytes[1] = 0xFF;
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.expect_section(0x01),
            Err(CodecError::Truncated { .. })
        ));
    }
}
