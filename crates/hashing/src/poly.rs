//! k-wise independent polynomial hashing over the Mersenne prime `2^61 - 1`.
//!
//! The Carter–Wegman construction: a degree-(k-1) polynomial with uniformly
//! random coefficients over the field `GF(p)` is a k-wise independent hash
//! family. The paper's analysis requires `Θ(log(d/δ))`-wise independence;
//! this family lets the `ablation_hashing` experiment compare the
//! theory-faithful construction against the 3-wise tabulation default.

use crate::mix::SplitMix64;

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Multiplies two values modulo `2^61 - 1` using 128-bit intermediates.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    // Fold the high 61-bit limbs back down: x mod (2^61 - 1).
    let lo = (prod & u128::from(MERSENNE_P)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A k-wise independent hash function `u64 -> u64` (outputs in `[0, 2^61-1)`).
#[derive(Debug, Clone)]
pub struct PolyHash {
    /// Coefficients `c_0 .. c_{k-1}`, each in `[0, p)`, `c_{k-1}` nonzero.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Builds a hash function from the k-wise independent family,
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "PolyHash independence level must be at least 1");
        let mut stream = SplitMix64::new(seed ^ 0x9E37_0000_0000_00F1);
        let mut coeffs = Vec::with_capacity(k);
        for i in 0..k {
            // Rejection-sample a uniform value in [0, p); the leading
            // coefficient must be nonzero for full degree.
            loop {
                let v = stream.next_u64() & MERSENNE_P; // 61 low bits
                if v < MERSENNE_P && (i + 1 < k || v != 0 || k == 1) {
                    coeffs.push(v);
                    break;
                }
            }
        }
        Self { coeffs }
    }

    /// Independence level of this function (the number of coefficients).
    #[must_use]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Heap bytes this function owns (its coefficient vector).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.coeffs.capacity() * std::mem::size_of::<u64>()
    }

    /// Hashes a 64-bit key. The key is first reduced into the field.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u64) -> u64 {
        let x = key % MERSENNE_P;
        // Horner evaluation: c_{k-1} x^{k-1} + ... + c_0.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = mul_mod(acc, x);
            acc += c;
            if acc >= MERSENNE_P {
                acc -= MERSENNE_P;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_mod_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_P - 1),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (123_456_789, 987_654_321),
            (1 << 60, (1 << 60) + 12345),
        ];
        for (a, b) in cases {
            let expect = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_P)) as u64;
            assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = PolyHash::new(4, 5);
        let b = PolyHash::new(4, 5);
        let c = PolyHash::new(4, 6);
        assert_eq!(a.hash(100), b.hash(100));
        let differs = (0..32u64).any(|k| a.hash(k) != c.hash(k));
        assert!(differs);
    }

    #[test]
    fn degree_one_is_constant() {
        // k = 1 means a constant polynomial: 1-wise "independence" only in
        // the degenerate sense, but the construction must still be valid.
        let h = PolyHash::new(1, 3);
        assert_eq!(h.hash(1), h.hash(2));
    }

    #[test]
    fn outputs_lie_in_field() {
        let h = PolyHash::new(8, 11);
        for k in 0..10_000u64 {
            assert!(h.hash(k) < MERSENNE_P);
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_uniform() {
        // For a 2-wise independent family, Pr[h(x) mod m == h(y) mod m] ≈ 1/m.
        let m = 64u64;
        let trials = 200u64;
        let mut collisions = 0u32;
        let mut total = 0u32;
        for t in 0..trials {
            let h = PolyHash::new(2, t);
            for x in 0..20u64 {
                for y in (x + 1)..20u64 {
                    total += 1;
                    if h.hash(x) % m == h.hash(y) % m {
                        collisions += 1;
                    }
                }
            }
        }
        let rate = f64::from(collisions) / f64::from(total);
        assert!(
            (rate - 1.0 / m as f64).abs() < 0.01,
            "collision rate {rate:.5}"
        );
    }
}
