//! Vectorized scatter/gather kernels over [`CoordPlan`]-style coordinate
//! arrays, with runtime CPU-feature dispatch.
//!
//! [`CoordPlan`](crate::CoordPlan)'s SoA layout — per-slot runs of `u32`
//! flat cell offsets and `±1.0` signs — was chosen in PR 1 so the update
//! hot loops could be treated as dense linear-algebra kernels. This module
//! is that kernel layer:
//!
//! * [`gather_dot`] — the margin gather `Σ_j signs[j] · cells[offsets[j]]`;
//! * [`gather_scaled`] — the median-buffer fill
//!   `out[j] = (scale · signs[j]) · cells[offsets[j]]`;
//! * [`scatter_add`] — the gradient scatter
//!   `cells[offsets[j]] += signs[j] · delta`;
//! * [`scatter_add_values`] — the fused scatter + post-scatter
//!   re-estimation gather of the WM update pipeline.
//!
//! Count-Min's estimate fold (`min_j cells[offsets[j]]`) deliberately
//! stays *outside* this layer: an order-sensitive `<` fold cannot use
//! lane-parallel `minpd` without changing which of two equal (`±0.0`)
//! cells wins, so its fastest correct form is the interleaved
//! hash-and-fold walk it already had.
//!
//! # Bit-identity contract
//!
//! Every kernel produces results **bit-identical** to its scalar reference
//! loop, on every backend. This is what lets the runtime dispatch hide
//! behind the sketches' golden `fused ≡ naive` guarantees:
//!
//! * per-element arithmetic uses exactly the scalar expression shapes
//!   (`s · c`, `(scale · s) · c`, `c + s · delta` — one multiply, one add,
//!   never an FMA contraction);
//! * reductions that are order-sensitive ([`gather_dot`]) vectorize only
//!   the loads and multiplies and run the fold itself in scalar element
//!   order;
//! * the scatters preserve scalar read-modify-write order under offset
//!   collisions: each 4-lane group is checked for pairwise-distinct
//!   offsets, and a colliding group falls back to the scalar tail loop
//!   for that group (groups are processed in element order, so
//!   cross-group dependencies resolve exactly as in the scalar loop).
//!
//! # Dispatch policy
//!
//! [`active_backend`] (coordinate kernels) and [`active_hash_backend`]
//! (the batch tabulation hash in `RowHashers::fill_plan`) resolve, in
//! priority order:
//!
//! 1. a process-local override installed by [`force_backend`] (used by
//!    differential tests and the throughput bench to pin a backend);
//! 2. the `WMSKETCH_FORCE_SCALAR` environment variable (any value other
//!    than `0`/empty forces [`Backend::Scalar`]; read once per process) —
//!    the escape hatch for soak-testing the fallback on AVX2 hosts — and
//!    its counterpart `WMSKETCH_FORCE_AVX2`, which skips calibration and
//!    pins AVX2 where supported;
//! 3. runtime CPU detection **plus a one-shot profitability
//!    calibration**: on hosts that report AVX2, each kernel class times a
//!    short deterministic micro-trial of its scalar and AVX2
//!    implementations (best-of-N, scalar as the incumbent — AVX2 must win
//!    by a clear margin) and caches the winner for the process lifetime.
//!
//! The calibration step exists because "has AVX2" does not imply "AVX2
//! gathers are fast": on several server microarchitectures (including
//! some cloud Xeons this repo builds on) gather-style access is
//! microcoded and *loses* to scalar loads at sketch depths, while other
//! parts run it at full throughput. Feature detection alone would pick a
//! measured regression; calibrating guarantees the dispatched path is
//! never slower than the scalar fallback (up to trial noise), whatever
//! the host. Correctness never depends on the choice — every backend is
//! bit-identical — so a mis-calibration under extreme timer noise costs
//! only a few percent of throughput, never a result.
//!
//! A [`Backend::Avx2`] override on a host without AVX2 silently resolves
//! to scalar — the override can widen test coverage, never break safety.
//! Kernels additionally route tiny inputs (fewer than one vector group)
//! to the scalar path, so callers never pay vector setup they cannot
//! amortize. The AVX2 bodies load cells with bounds-checked scalar loads
//! packed into vectors, so only the arithmetic is intrinsic and
//! out-of-bounds offsets panic exactly like the scalar loops.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation [`active_backend`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Auto-vectorization-friendly scalar loops; correct everywhere.
    Scalar,
    /// `core::arch::x86_64` AVX2 gathers (`vgatherdpd`/`vpgatherqq`);
    /// only ever selected when the host reports AVX2 at runtime.
    Avx2,
}

impl Backend {
    /// Stable lowercase name, for logs and bench metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Whether the host CPU supports the AVX2 kernel set.
#[must_use]
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Process-local override: 0 = none, 1 = scalar, 2 = avx2.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// What the environment variables ask for, read once per process.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EnvPolicy {
    /// No relevant variable set: calibrate.
    Auto,
    /// `WMSKETCH_FORCE_SCALAR`: scalar everywhere.
    ForceScalar,
    /// `WMSKETCH_FORCE_AVX2`: AVX2 where supported, skipping calibration.
    ForceAvx2,
}

fn env_policy() -> EnvPolicy {
    static POLICY: OnceLock<EnvPolicy> = OnceLock::new();
    let set = |name: &str| {
        std::env::var(name)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    };
    *POLICY.get_or_init(|| {
        if set("WMSKETCH_FORCE_SCALAR") {
            EnvPolicy::ForceScalar
        } else if set("WMSKETCH_FORCE_AVX2") {
            EnvPolicy::ForceAvx2
        } else {
            EnvPolicy::Auto
        }
    })
}

/// Times `work` over `trials` runs and returns the fastest run — the
/// minimum is robust to preemption on shared hosts, which only ever adds
/// time.
#[cfg(target_arch = "x86_64")]
fn best_of(trials: usize, mut work: impl FnMut()) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..trials {
        let start = std::time::Instant::now();
        work();
        best = best.min(start.elapsed());
    }
    best
}

/// Margin the AVX2 trial must beat scalar by before it is adopted:
/// `avx2 × NUM < scalar × DEN`, i.e. at least ~5% faster. Scalar is the
/// incumbent — ties and noise go to the portable path.
#[cfg(target_arch = "x86_64")]
const CALIBRATION_MARGIN: (u32, u32) = (21, 20);

/// One-shot profitability trial for the coordinate kernels: a
/// deterministic depth-14 workload (the paper's 8 KB WM shape) of margin
/// gathers and fused scatter+value fills, timed on both implementations.
#[cfg(target_arch = "x86_64")]
fn calibrate_coord_kernels() -> Backend {
    use crate::mix::splitmix64;
    const DEPTH: usize = 14;
    const SLOTS: usize = 64;
    const REPS: usize = 48;
    let cells_init: Vec<f64> = (0..2048)
        .map(|i| (splitmix64(i) as f64 / u64::MAX as f64) - 0.5)
        .collect();
    let offsets: Vec<u32> = (0..SLOTS * DEPTH)
        .map(|i| (splitmix64(i as u64 ^ 0xC0DE) % 2048) as u32)
        .collect();
    let signs: Vec<f64> = (0..SLOTS * DEPTH)
        .map(|i| {
            if splitmix64(i as u64 ^ 0x51) & 1 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let mut cells = cells_init.clone();
    let mut out = [0.0f64; DEPTH];
    let mut run_scalar = || {
        let mut sink = 0.0;
        for _ in 0..REPS {
            for slot in 0..SLOTS {
                let run = slot * DEPTH..(slot + 1) * DEPTH;
                sink += gather_dot_scalar(&cells, &offsets[run.clone()], &signs[run.clone()]);
                scatter_add_values_scalar(
                    &mut cells,
                    &offsets[run.clone()],
                    &signs[run],
                    1e-12,
                    2.0,
                    &mut out,
                );
            }
        }
        std::hint::black_box(sink);
    };
    let scalar = best_of(3, &mut run_scalar);
    let mut cells = cells_init;
    let mut run_avx2 = || {
        let mut sink = 0.0;
        for _ in 0..REPS {
            for slot in 0..SLOTS {
                let run = slot * DEPTH..(slot + 1) * DEPTH;
                // SAFETY: the caller (`default_backend`) only calibrates
                // when the runtime AVX2 check passed.
                unsafe {
                    sink += avx2::gather_dot(&cells, &offsets[run.clone()], &signs[run.clone()]);
                    avx2::scatter_add_values(
                        &mut cells,
                        &offsets[run.clone()],
                        &signs[run],
                        1e-12,
                        2.0,
                        &mut out,
                    );
                }
            }
        }
        std::hint::black_box(sink);
    };
    let vectored = best_of(3, &mut run_avx2);
    let (num, den) = CALIBRATION_MARGIN;
    if vectored * num < scalar * den {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// One-shot profitability trial for the batched tabulation hash: the
/// 4-wide `vpgatherqq` mixer against four scalar hashes.
#[cfg(target_arch = "x86_64")]
fn calibrate_hash_kernels() -> Backend {
    use crate::tabulation::TabulationHash;
    const KEYS: u64 = 256;
    const REPS: usize = 24;
    let t = TabulationHash::new(0x7AB);
    let mut run_scalar = || {
        let mut sink = 0u64;
        for _ in 0..REPS {
            for k in (0..KEYS).step_by(4) {
                let h = t.hash_x4_scalar([k, k + 1, k + 2, k + 3]);
                sink ^= h[0] ^ h[1] ^ h[2] ^ h[3];
            }
        }
        std::hint::black_box(sink);
    };
    let scalar = best_of(3, &mut run_scalar);
    let mut run_avx2 = || {
        let mut sink = 0u64;
        for _ in 0..REPS {
            for k in (0..KEYS).step_by(4) {
                // SAFETY: the caller (`default_backend`) only calibrates
                // when the runtime AVX2 check passed.
                let h = unsafe { t.hash_x4_avx2([k, k + 1, k + 2, k + 3]) };
                sink ^= h[0] ^ h[1] ^ h[2] ^ h[3];
            }
        }
        std::hint::black_box(sink);
    };
    let vectored = best_of(3, &mut run_avx2);
    let (num, den) = CALIBRATION_MARGIN;
    if vectored * num < scalar * den {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// The default backend for a kernel class, resolved once per process from
/// the environment, CPU detection, and (in auto mode) the class's
/// profitability calibration. The winner is mirrored into `cache` so the
/// steady-state read in [`resolve`] is one relaxed atomic load — the same
/// cost an installed override pays — keeping the default path free of
/// per-call `OnceLock` synchronization.
#[cold]
fn default_backend_slow(cache: &AtomicU8, class: KernelClass) -> Backend {
    static CALIBRATION: OnceLock<[Backend; 2]> = OnceLock::new();
    let chosen = CALIBRATION.get_or_init(|| {
        let per_class = |class: KernelClass| match env_policy() {
            EnvPolicy::ForceScalar => Backend::Scalar,
            EnvPolicy::ForceAvx2 if avx2_supported() => Backend::Avx2,
            EnvPolicy::ForceAvx2 => Backend::Scalar,
            EnvPolicy::Auto if avx2_supported() => {
                #[cfg(target_arch = "x86_64")]
                {
                    match class {
                        KernelClass::Coord => calibrate_coord_kernels(),
                        KernelClass::HashFill => calibrate_hash_kernels(),
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let _ = class;
                    Backend::Scalar
                }
            }
            EnvPolicy::Auto => Backend::Scalar,
        };
        [
            per_class(KernelClass::Coord),
            per_class(KernelClass::HashFill),
        ]
    })[class as usize];
    cache.store(
        match chosen {
            Backend::Scalar => 1,
            Backend::Avx2 => 2,
        },
        Ordering::Relaxed,
    );
    chosen
}

/// The independently calibrated kernel classes.
#[derive(Clone, Copy)]
enum KernelClass {
    /// f64 gathers/scatters over coordinate arrays.
    Coord = 0,
    /// The batched tabulation hash mixing in `fill_plan`.
    HashFill = 1,
}

/// Per-class calibrated-default caches: 0 = unresolved, 1 = scalar,
/// 2 = avx2.
static COORD_CACHE: AtomicU8 = AtomicU8::new(0);
static HASH_CACHE: AtomicU8 = AtomicU8::new(0);

fn resolve(class: KernelClass) -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 if avx2_supported() => Backend::Avx2,
        2 => Backend::Scalar,
        _ => {
            let cache = match class {
                KernelClass::Coord => &COORD_CACHE,
                KernelClass::HashFill => &HASH_CACHE,
            };
            match cache.load(Ordering::Relaxed) {
                1 => Backend::Scalar,
                2 => Backend::Avx2,
                _ => default_backend_slow(cache, class),
            }
        }
    }
}

/// The backend the coordinate (gather/scatter) kernels in this module
/// currently dispatch to. See the module docs for the resolution order.
#[must_use]
pub fn active_backend() -> Backend {
    resolve(KernelClass::Coord)
}

/// The backend `RowHashers::fill_plan`'s batched tabulation hashing
/// currently dispatches to — calibrated separately from the coordinate
/// kernels because the instruction mixes (integer table gathers vs f64
/// packed loads) can win or lose independently.
#[must_use]
pub fn active_hash_backend() -> Backend {
    resolve(KernelClass::HashFill)
}

/// Restores the previous backend override when dropped; returned by
/// [`force_backend`].
#[must_use = "dropping the guard immediately restores the previous backend"]
pub struct BackendGuard {
    previous: u8,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.previous, Ordering::Relaxed);
    }
}

/// Pins the kernel backend process-wide until the returned guard drops
/// (`None` restores the environment/CPU-detected default).
///
/// Intended for differential tests and benchmarks. The override is global
/// mutable state, but because every backend is bit-identical by contract,
/// concurrent readers only ever observe a change of *implementation*,
/// never of results.
pub fn force_backend(backend: Option<Backend>) -> BackendGuard {
    let value = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Avx2) => 2,
    };
    BackendGuard {
        previous: OVERRIDE.swap(value, Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// gather_dot
// ---------------------------------------------------------------------------

/// The sign-corrected gather dot `Σ_j signs[j] · cells[offsets[j]]`,
/// accumulated in element order — bit-identical to the naive per-row
/// margin traversal.
///
/// # Panics
/// Panics if `offsets` and `signs` differ in length or an offset is out
/// of bounds for `cells`.
#[inline]
#[must_use]
pub fn gather_dot(cells: &[f64], offsets: &[u32], signs: &[f64]) -> f64 {
    assert_eq!(offsets.len(), signs.len(), "offset/sign length mismatch");
    #[cfg(target_arch = "x86_64")]
    if offsets.len() >= 4 && active_backend() == Backend::Avx2 {
        // SAFETY: Backend::Avx2 is only resolved on hosts that report AVX2
        // at runtime (the dispatch invariant); cell indexing inside is
        // bounds-checked like the scalar loop's.
        return unsafe { avx2::gather_dot(cells, offsets, signs) };
    }
    gather_dot_scalar(cells, offsets, signs)
}

/// Scalar reference implementation of [`gather_dot`]; always available,
/// used directly by differential tests.
#[inline]
#[must_use]
pub fn gather_dot_scalar(cells: &[f64], offsets: &[u32], signs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&o, &s) in offsets.iter().zip(signs) {
        acc += s * cells[o as usize];
    }
    acc
}

// ---------------------------------------------------------------------------
// gather_scaled
// ---------------------------------------------------------------------------

/// The median-buffer fill `out[j] = (scale · signs[j]) · cells[offsets[j]]`.
///
/// Every element is independent, so this vectorizes freely; the per-lane
/// expression matches the scalar `scale * s * c` (left-associated) bit for
/// bit.
///
/// # Panics
/// Panics if the three slice lengths differ or an offset is out of bounds
/// for `cells`.
#[inline]
pub fn gather_scaled(cells: &[f64], offsets: &[u32], signs: &[f64], scale: f64, out: &mut [f64]) {
    assert_eq!(offsets.len(), signs.len(), "offset/sign length mismatch");
    assert_eq!(offsets.len(), out.len(), "offset/output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if offsets.len() >= 4 && active_backend() == Backend::Avx2 {
        // SAFETY: AVX2 presence is guaranteed by the dispatch invariant
        // (Backend::Avx2 implies a positive runtime feature check); cell
        // indexing inside is bounds-checked like the scalar loop's.
        unsafe { avx2::gather_scaled(cells, offsets, signs, scale, out) };
        return;
    }
    gather_scaled_scalar(cells, offsets, signs, scale, out);
}

/// Scalar reference implementation of [`gather_scaled`].
#[inline]
pub fn gather_scaled_scalar(
    cells: &[f64],
    offsets: &[u32],
    signs: &[f64],
    scale: f64,
    out: &mut [f64],
) {
    for ((&o, &s), v) in offsets.iter().zip(signs).zip(out.iter_mut()) {
        *v = scale * s * cells[o as usize];
    }
}

// ---------------------------------------------------------------------------
// scatter_add
// ---------------------------------------------------------------------------

/// The gradient scatter `cells[offsets[j]] += signs[j] · delta`, in
/// element order.
///
/// Offsets may collide (e.g. a whole example's coordinates where two
/// features share a cell): each 4-lane group is checked for pairwise
/// distinct offsets and colliding groups run scalar, so repeated
/// read-modify-writes of one cell accumulate exactly as in the scalar
/// loop.
///
/// # Panics
/// Panics if `offsets` and `signs` differ in length or an offset is out
/// of bounds for `cells`.
#[inline]
pub fn scatter_add(cells: &mut [f64], offsets: &[u32], signs: &[f64], delta: f64) {
    assert_eq!(offsets.len(), signs.len(), "offset/sign length mismatch");
    #[cfg(target_arch = "x86_64")]
    if offsets.len() >= 4 && active_backend() == Backend::Avx2 {
        // SAFETY: AVX2 presence is guaranteed by the dispatch invariant;
        // cell indexing inside is bounds-checked, and the AVX2 body
        // preserves scalar ordering via its per-group conflict check.
        unsafe { avx2::scatter_add(cells, offsets, signs, delta) };
        return;
    }
    scatter_add_scalar(cells, offsets, signs, delta);
}

/// Scalar reference implementation of [`scatter_add`].
#[inline]
pub fn scatter_add_scalar(cells: &mut [f64], offsets: &[u32], signs: &[f64], delta: f64) {
    for (&o, &s) in offsets.iter().zip(signs) {
        cells[o as usize] += s * delta;
    }
}

// ---------------------------------------------------------------------------
// scatter_add_values
// ---------------------------------------------------------------------------

/// The fused scatter + post-scatter re-estimation gather:
/// `cells[offsets[j]] += signs[j] · delta` and, from the *updated* cell,
/// `out[j] = (scale · signs[j]) · cells[offsets[j]]` — in element order,
/// with the same per-group collision handling as [`scatter_add`].
///
/// # Panics
/// Panics if the three slice lengths differ or an offset is out of bounds
/// for `cells`.
#[inline]
pub fn scatter_add_values(
    cells: &mut [f64],
    offsets: &[u32],
    signs: &[f64],
    delta: f64,
    scale: f64,
    out: &mut [f64],
) {
    assert_eq!(offsets.len(), signs.len(), "offset/sign length mismatch");
    assert_eq!(offsets.len(), out.len(), "offset/output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if offsets.len() >= 4 && active_backend() == Backend::Avx2 {
        // SAFETY: AVX2 presence is guaranteed by the dispatch invariant;
        // cell indexing inside is bounds-checked, and the AVX2 body
        // preserves scalar ordering via its per-group conflict check.
        unsafe { avx2::scatter_add_values(cells, offsets, signs, delta, scale, out) };
        return;
    }
    scatter_add_values_scalar(cells, offsets, signs, delta, scale, out);
}

/// Scalar reference implementation of [`scatter_add_values`].
#[inline]
pub fn scatter_add_values_scalar(
    cells: &mut [f64],
    offsets: &[u32],
    signs: &[f64],
    delta: f64,
    scale: f64,
    out: &mut [f64],
) {
    for ((&o, &s), v) in offsets.iter().zip(signs).zip(out.iter_mut()) {
        let cell = &mut cells[o as usize];
        *cell += s * delta;
        *v = scale * s * *cell;
    }
}

/// The AVX2 kernel bodies. Every function is `unsafe` with the same
/// contract: the caller has verified AVX2 support (via the dispatch
/// invariant that [`Backend::Avx2`] is only resolved after a positive
/// runtime feature check) and that every offset indexes within `cells`.
///
/// Cell "gathers" are four bounds-checked scalar loads packed into a
/// vector rather than `vgatherdpd`: hardware gathers are microcoded on
/// many server parts (including the build containers' Xeons) and lose to
/// plain loads at sketch depths, while the packing form keeps the
/// multiply/add arithmetic vectorized either way.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_set_pd,
        _mm256_storeu_pd,
    };

    /// Loads one 4-lane group: the four cells addressed by
    /// `offsets[i..i + 4]` (bounds-checked scalar loads, packed) and the
    /// four signs starting at element `i`.
    ///
    /// # Safety
    /// AVX2 must be available; `offsets[i..i + 4]` and `signs[i..i + 4]`
    /// must be in bounds (cell indexing is checked and panics like the
    /// scalar loops).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_group(
        cells: &[f64],
        offsets: &[u32],
        signs: &[f64],
        i: usize,
    ) -> (std::arch::x86_64::__m256d, std::arch::x86_64::__m256d) {
        let vals = _mm256_set_pd(
            cells[offsets[i + 3] as usize],
            cells[offsets[i + 2] as usize],
            cells[offsets[i + 1] as usize],
            cells[offsets[i] as usize],
        );
        // SAFETY (callee contract): signs[i..i+4] is in bounds; loadu has
        // no alignment requirement.
        let sg = _mm256_loadu_pd(signs.as_ptr().add(i));
        (vals, sg)
    }

    /// # Safety
    /// AVX2 available; `offsets.len() == signs.len()`; every offset
    /// indexes within `cells`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_dot(cells: &[f64], offsets: &[u32], signs: &[f64]) -> f64 {
        let n = offsets.len();
        let mut acc = 0.0;
        let mut prod = [0.0f64; 4];
        for i in (0..n - n % 4).step_by(4) {
            let (vals, sg) = load_group(cells, offsets, signs, i);
            _mm256_storeu_pd(prod.as_mut_ptr(), _mm256_mul_pd(sg, vals));
            // The products are the scalar loop's `s * c` terms; summing
            // them in lane order keeps the reduction bit-identical to the
            // sequential accumulation.
            acc += prod[0];
            acc += prod[1];
            acc += prod[2];
            acc += prod[3];
        }
        for j in n - n % 4..n {
            acc += signs[j] * cells[offsets[j] as usize];
        }
        acc
    }

    /// # Safety
    /// AVX2 available; the three slices are the same length; every offset
    /// indexes within `cells`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_scaled(
        cells: &[f64],
        offsets: &[u32],
        signs: &[f64],
        scale: f64,
        out: &mut [f64],
    ) {
        let n = offsets.len();
        let scale_v = _mm256_set1_pd(scale);
        for i in (0..n - n % 4).step_by(4) {
            let (vals, sg) = load_group(cells, offsets, signs, i);
            // (scale * s) * c, matching the scalar expression's
            // left-association.
            let scaled_sign = _mm256_mul_pd(scale_v, sg);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(scaled_sign, vals));
        }
        for j in n - n % 4..n {
            out[j] = scale * signs[j] * cells[offsets[j] as usize];
        }
    }

    /// Whether the four offsets starting at `i` are pairwise distinct —
    /// the condition under which a vector read-all-then-write-all group
    /// is indistinguishable from the scalar element-order loop.
    #[inline]
    fn group_distinct(offsets: &[u32], i: usize) -> bool {
        let [a, b, c, d] = [offsets[i], offsets[i + 1], offsets[i + 2], offsets[i + 3]];
        a != b && a != c && a != d && b != c && b != d && c != d
    }

    /// # Safety
    /// AVX2 available; `offsets.len() == signs.len()`; every offset
    /// indexes within `cells`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scatter_add(
        cells: &mut [f64],
        offsets: &[u32],
        signs: &[f64],
        delta: f64,
    ) {
        let n = offsets.len();
        let delta_v = _mm256_set1_pd(delta);
        let mut updated = [0.0f64; 4];
        for i in (0..n - n % 4).step_by(4) {
            if group_distinct(offsets, i) {
                let (vals, sg) = load_group(cells, offsets, signs, i);
                // c + (s * delta): one multiply then one add per lane,
                // exactly the scalar `c += s * delta`.
                let next = _mm256_add_pd(vals, _mm256_mul_pd(sg, delta_v));
                _mm256_storeu_pd(updated.as_mut_ptr(), next);
                for lane in 0..4 {
                    cells[offsets[i + lane] as usize] = updated[lane];
                }
            } else {
                // Colliding lanes must see each other's writes; spill the
                // whole group to the scalar read-modify-write order.
                for j in i..i + 4 {
                    cells[offsets[j] as usize] += signs[j] * delta;
                }
            }
        }
        for j in n - n % 4..n {
            cells[offsets[j] as usize] += signs[j] * delta;
        }
    }

    /// # Safety
    /// AVX2 available; the three slices are the same length; every offset
    /// indexes within `cells`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scatter_add_values(
        cells: &mut [f64],
        offsets: &[u32],
        signs: &[f64],
        delta: f64,
        scale: f64,
        out: &mut [f64],
    ) {
        let n = offsets.len();
        let delta_v = _mm256_set1_pd(delta);
        let scale_v = _mm256_set1_pd(scale);
        let mut updated = [0.0f64; 4];
        for i in (0..n - n % 4).step_by(4) {
            if group_distinct(offsets, i) {
                let (vals, sg) = load_group(cells, offsets, signs, i);
                let next = _mm256_add_pd(vals, _mm256_mul_pd(sg, delta_v));
                _mm256_storeu_pd(updated.as_mut_ptr(), next);
                for lane in 0..4 {
                    cells[offsets[i + lane] as usize] = updated[lane];
                }
                let scaled_sign = _mm256_mul_pd(scale_v, sg);
                _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(scaled_sign, next));
            } else {
                for j in i..i + 4 {
                    let cell = &mut cells[offsets[j] as usize];
                    *cell += signs[j] * delta;
                    out[j] = scale * signs[j] * *cell;
                }
            }
        }
        for j in n - n % 4..n {
            let cell = &mut cells[offsets[j] as usize];
            *cell += signs[j] * delta;
            out[j] = scale * signs[j] * *cell;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::splitmix64;

    fn cells(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (splitmix64(i as u64) as f64 / u64::MAX as f64) * 4.0 - 2.0)
            .collect()
    }

    fn coords(n: usize, cell_count: usize, salt: u64) -> (Vec<u32>, Vec<f64>) {
        let offsets: Vec<u32> = (0..n)
            .map(|i| (splitmix64(salt ^ i as u64) % cell_count as u64) as u32)
            .collect();
        let signs: Vec<f64> = (0..n)
            .map(|i| {
                if splitmix64(salt.wrapping_add(i as u64 * 7)) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        (offsets, signs)
    }

    /// Serializes tests that install backend overrides: the override is
    /// process-global, so concurrent tests would otherwise observe each
    /// other's pins (results stay bit-identical either way, but the
    /// dispatch assertions below would flake).
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` once per backend that is available on this host (scalar
    /// always; AVX2 when detected), pinning the dispatch for the call.
    fn for_each_backend(mut f: impl FnMut(Backend)) {
        let _lock = override_lock();
        for backend in [Backend::Scalar, Backend::Avx2] {
            if backend == Backend::Avx2 && !avx2_supported() {
                continue;
            }
            let _guard = force_backend(Some(backend));
            assert_eq!(active_backend(), backend);
            f(backend);
        }
    }

    #[test]
    fn backends_match_scalar_reference_on_all_kernels() {
        let table = cells(257);
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 14, 64, 80, 200] {
            let (offsets, signs) = coords(n, table.len(), n as u64 * 31 + 1);
            for_each_backend(|backend| {
                let ctx = format!("{} n={n}", backend.name());
                // gather_dot
                let want = gather_dot_scalar(&table, &offsets, &signs);
                let got = gather_dot(&table, &offsets, &signs);
                assert_eq!(got.to_bits(), want.to_bits(), "{ctx} gather_dot");
                // gather_scaled
                let mut want_out = vec![0.0; n];
                let mut got_out = vec![0.0; n];
                gather_scaled_scalar(&table, &offsets, &signs, 3.7, &mut want_out);
                gather_scaled(&table, &offsets, &signs, 3.7, &mut got_out);
                assert!(
                    want_out
                        .iter()
                        .zip(&got_out)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{ctx} gather_scaled"
                );
                // scatter_add (collisions included by construction: offsets
                // repeat once n exceeds the cell count used below).
                let mut want_cells = table.clone();
                let mut got_cells = table.clone();
                scatter_add_scalar(&mut want_cells, &offsets, &signs, 0.625);
                scatter_add(&mut got_cells, &offsets, &signs, 0.625);
                assert!(
                    want_cells
                        .iter()
                        .zip(&got_cells)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{ctx} scatter_add"
                );
                // scatter_add_values
                let mut want_cells = table.clone();
                let mut got_cells = table.clone();
                scatter_add_values_scalar(
                    &mut want_cells,
                    &offsets,
                    &signs,
                    0.625,
                    2.5,
                    &mut want_out,
                );
                scatter_add_values(&mut got_cells, &offsets, &signs, 0.625, 2.5, &mut got_out);
                assert!(
                    want_cells
                        .iter()
                        .zip(&got_cells)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{ctx} scatter_add_values cells"
                );
                assert!(
                    want_out
                        .iter()
                        .zip(&got_out)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{ctx} scatter_add_values out"
                );
            });
        }
    }

    #[test]
    fn scatter_handles_dense_collisions_in_one_group() {
        // All four lanes of a group land on one cell: the vector path must
        // spill to scalar so the four increments accumulate.
        let offsets = [5u32, 5, 5, 5, 2, 5, 5, 2];
        let signs = [1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, -1.0];
        for_each_backend(|backend| {
            let mut want = vec![0.0f64; 8];
            let mut got = vec![0.0f64; 8];
            scatter_add_scalar(&mut want, &offsets, &signs, 1.5);
            scatter_add(&mut got, &offsets, &signs, 1.5);
            assert_eq!(want, got, "{}", backend.name());
            let mut want_vals = vec![0.0f64; 8];
            let mut got_vals = vec![0.0f64; 8];
            let mut want_cells = vec![1.0f64; 8];
            let mut got_cells = vec![1.0f64; 8];
            scatter_add_values_scalar(&mut want_cells, &offsets, &signs, 1.5, 2.0, &mut want_vals);
            scatter_add_values(&mut got_cells, &offsets, &signs, 1.5, 2.0, &mut got_vals);
            assert_eq!(want_cells, got_cells, "{}", backend.name());
            assert_eq!(want_vals, got_vals, "{}", backend.name());
        });
    }

    #[test]
    fn out_of_bounds_offset_panics_on_every_backend() {
        for_each_backend(|backend| {
            let result = std::panic::catch_unwind(|| {
                let table = vec![0.0f64; 8];
                gather_dot(&table, &[1, 2, 3, 9], &[1.0, 1.0, 1.0, 1.0])
            });
            assert!(result.is_err(), "{}: no panic", backend.name());
        });
    }

    #[test]
    fn force_backend_guard_restores_previous_state() {
        let _lock = override_lock();
        let unforced = active_backend();
        {
            let _g = force_backend(Some(Backend::Scalar));
            assert_eq!(active_backend(), Backend::Scalar);
            {
                let _inner = force_backend(None);
                assert_eq!(active_backend(), unforced);
            }
            assert_eq!(active_backend(), Backend::Scalar);
        }
        assert_eq!(active_backend(), unforced);
    }

    #[test]
    fn avx2_override_without_support_resolves_to_scalar() {
        let _lock = override_lock();
        let _g = force_backend(Some(Backend::Avx2));
        if avx2_supported() {
            assert_eq!(active_backend(), Backend::Avx2);
        } else {
            assert_eq!(active_backend(), Backend::Scalar);
        }
    }

    #[test]
    fn kernel_class_backends_resolve_consistently() {
        // Whatever calibration picked, both class resolvers must return a
        // backend that is actually executable on this host.
        for b in [active_backend(), active_hash_backend()] {
            if b == Backend::Avx2 {
                assert!(avx2_supported());
            }
        }
    }
}
