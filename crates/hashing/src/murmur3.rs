//! MurmurHash3 (x86_32 variant, Austin Appleby, public domain).
//!
//! The paper's streaming-PMI application (§8.3) hashes token strings to
//! 32-bit identifiers with MurmurHash3 before sketching; we reproduce the
//! same reduction so string-keyed workloads follow the same code path.

/// Computes the 32-bit MurmurHash3 of `data` with the given `seed`.
#[must_use]
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xCC9E_2D51;
    const C2: u32 = 0x1B87_3593;

    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xE654_6B64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k = 0u32;
        for (i, &b) in tail.iter().enumerate() {
            k |= u32::from(b) << (8 * i);
        }
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }

    h ^= data.len() as u32;
    // fmix32 finalizer.
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical smhasher implementation.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514E_28B7);
        assert_eq!(murmur3_32(b"", 0xFFFF_FFFF), 0x81F1_6F39);
        assert_eq!(murmur3_32(b"test", 0), 0xBA6B_D213);
        assert_eq!(murmur3_32(b"test", 0x9747_B28C), 0x704B_81DC);
        assert_eq!(murmur3_32(b"Hello, world!", 0), 0xC036_3E43);
        assert_eq!(murmur3_32(b"Hello, world!", 0x9747_B28C), 0x2488_4CBA);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog", 0),
            0x2E4F_F723
        );
    }

    #[test]
    fn tail_lengths_all_work() {
        // Exercise remainder handling for lengths 0..=8.
        let data = b"abcdefgh";
        let mut outputs = std::collections::HashSet::new();
        for len in 0..=data.len() {
            outputs.insert(murmur3_32(&data[..len], 42));
        }
        assert_eq!(
            outputs.len(),
            data.len() + 1,
            "prefixes must hash distinctly"
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(murmur3_32(b"token", 0), murmur3_32(b"token", 1));
    }
}
