//! Bit mixers and small utilities shared by the hash families.

/// Finalizing mixer from the SplitMix64 generator (Steele et al.).
///
/// A fast bijective mixer with good avalanche behaviour; used for seeding
/// the table-based hash families and as a cheap integer hash for internal
/// hash maps. Not independent in any formal sense — the sketches use
/// [`crate::TabulationHash`] or [`crate::PolyHash`] instead.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny deterministic stream of 64-bit values derived from a seed.
///
/// Used to derive per-row, per-table seeds so that constructing the same
/// structure from the same seed always yields the same hash functions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current stream position. Feeding it back to
    /// [`SplitMix64::new`] resumes the stream exactly where it left off —
    /// which is how snapshot codecs persist an RNG mid-stream.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64-bit value in the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps a 64-bit hash value uniformly onto `0..n` without division
/// (Lemire's multiply-shift range reduction).
///
/// `n` must be nonzero. The top bits of `h` dominate the result, so `h`
/// should be a well-mixed hash value, not a raw key.
#[inline]
pub fn fast_range(h: u64, n: u64) -> u64 {
    debug_assert!(n > 0, "fast_range: range must be nonzero");
    ((u128::from(h) * u128::from(n)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_values_differ_and_are_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn splitmix64_is_bijective_on_small_sample() {
        // A bijection never collides; check a decent sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn splitmix64_stream_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fast_range_stays_in_range() {
        for n in [1u64, 2, 3, 7, 100, 1 << 20] {
            for i in 0..1000u64 {
                let h = splitmix64(i);
                assert!(fast_range(h, n) < n);
            }
        }
    }

    #[test]
    fn fast_range_is_roughly_uniform() {
        let n = 16u64;
        let mut counts = vec![0u32; n as usize];
        let trials = 160_000;
        for i in 0..trials {
            counts[fast_range(splitmix64(i), n) as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {bucket} deviates {dev:.3}");
        }
    }

    #[test]
    fn fast_range_n_one_is_always_zero() {
        for i in 0..100u64 {
            assert_eq!(fast_range(splitmix64(i), 1), 0);
        }
    }
}
