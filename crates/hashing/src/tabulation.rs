//! Simple tabulation hashing (Zobrist / Carter–Wegman).
//!
//! Splits a 64-bit key into 8 bytes and XORs together one random 64-bit
//! table entry per byte. Simple tabulation is 3-wise independent, which is
//! the independence level the paper's implementation uses (Appendix B:
//! *"our implementation simply uses fast, 3-wise independent tabulation
//! hashing. In our experiments, we did not observe any significant
//! degradation in performance from this choice."*).

use crate::mix::SplitMix64;

const NUM_CHUNKS: usize = 8;
const TABLE_SIZE: usize = 256;

/// A 3-wise independent hash function `u64 -> u64` via simple tabulation.
///
/// Construction cost is 8 × 256 random words (16 KiB); evaluation is eight
/// table lookups and XORs, independent of key distribution.
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE_SIZE]; NUM_CHUNKS]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash").finish_non_exhaustive()
    }
}

impl TabulationHash {
    /// Builds a tabulation hash function with tables filled deterministically
    /// from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut stream = SplitMix64::new(seed ^ 0x7AB0_1A7E_0000_0001);
        let mut tables = Box::new([[0u64; TABLE_SIZE]; NUM_CHUNKS]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = stream.next_u64();
            }
        }
        Self { tables }
    }

    /// Heap bytes this function owns: the boxed 8 × 256-word lookup
    /// table (16 KiB). Dominates the resident cost of small sketches, so
    /// memory-governed fleets must account for it explicitly.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<[[u64; TABLE_SIZE]; NUM_CHUNKS]>()
    }

    /// Hashes a 64-bit key.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u64) -> u64 {
        let bytes = key.to_le_bytes();
        let mut h = 0u64;
        for (chunk, &b) in bytes.iter().enumerate() {
            h ^= self.tables[chunk][b as usize];
        }
        h
    }

    /// Hashes four keys at once with scalar table lookups — the reference
    /// for [`TabulationHash::hash_x4_avx2`] and the fallback the batch
    /// planner uses on non-AVX2 hosts.
    #[inline]
    #[must_use]
    pub fn hash_x4_scalar(&self, keys: [u64; 4]) -> [u64; 4] {
        keys.map(|k| self.hash(k))
    }

    /// Hashes four keys at once with AVX2 table gathers: per byte chunk,
    /// one `vpgatherqq` fetches all four keys' table entries (the chunk's
    /// 256-entry table is shared across keys, which is what makes the
    /// mixing embarrassingly parallel across keys). Bit-identical to four
    /// [`TabulationHash::hash`] calls — the kernel is pure integer
    /// shifts, gathers, and XORs.
    ///
    /// # Safety
    /// The caller must ensure the host supports AVX2 (e.g. via
    /// `wmsketch_hashing::simd::active_backend()` resolving to
    /// `Backend::Avx2`, which implies a positive runtime feature check).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[must_use]
    pub unsafe fn hash_x4_avx2(&self, keys: [u64; 4]) -> [u64; 4] {
        use std::arch::x86_64::{
            __m256i, _mm256_and_si256, _mm256_i64gather_epi64, _mm256_loadu_si256,
            _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_srli_epi64, _mm256_storeu_si256,
            _mm256_xor_si256,
        };
        // SAFETY: `keys` is 32 bytes; loadu has no alignment requirement.
        let k = _mm256_loadu_si256(keys.as_ptr().cast::<__m256i>());
        let byte_mask = _mm256_set1_epi64x(0xFF);
        let mut h = _mm256_setzero_si256();
        // The shift amount must be a const, so the chunk loop is unrolled
        // with a const-generic helper.
        macro_rules! chunk {
            ($c:literal) => {{
                let idx = _mm256_and_si256(_mm256_srli_epi64::<{ $c * 8 }>(k), byte_mask);
                // SAFETY: each index is masked to 0..=255, within the
                // chunk's 256-entry table.
                let entries =
                    _mm256_i64gather_epi64::<8>(self.tables[$c].as_ptr().cast::<i64>(), idx);
                h = _mm256_xor_si256(h, entries);
            }};
        }
        chunk!(0);
        chunk!(1);
        chunk!(2);
        chunk!(3);
        chunk!(4);
        chunk!(5);
        chunk!(6);
        chunk!(7);
        let mut out = [0u64; 4];
        // SAFETY: `out` is 32 bytes; storeu has no alignment requirement.
        _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), h);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = TabulationHash::new(7);
        let b = TabulationHash::new(7);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let differs = (0..64u64).any(|k| a.hash(k) != b.hash(k));
        assert!(differs);
    }

    #[test]
    fn few_collisions_on_sequential_keys() {
        let h = TabulationHash::new(3);
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u64 {
            seen.insert(h.hash(k));
        }
        // With 100k keys into 2^64 outputs, collisions should be absent.
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn hash_x4_matches_four_scalar_hashes() {
        let h = TabulationHash::new(77);
        for base in (0..4000u64).step_by(4) {
            let keys = [
                base,
                base + 1,
                base.wrapping_mul(2654435761),
                u64::MAX - base,
            ];
            let want = [
                h.hash(keys[0]),
                h.hash(keys[1]),
                h.hash(keys[2]),
                h.hash(keys[3]),
            ];
            assert_eq!(h.hash_x4_scalar(keys), want);
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                let got = unsafe { h.hash_x4_avx2(keys) };
                assert_eq!(got, want, "keys {keys:?}");
            }
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        let h = TabulationHash::new(9);
        let n = 100_000u64;
        let mut ones = [0u32; 64];
        for k in 0..n {
            let v = h.hash(k);
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in ones.iter().enumerate() {
            let frac = f64::from(c) / n as f64;
            assert!(
                (frac - 0.5).abs() < 0.02,
                "bit {bit} set fraction {frac:.4}"
            );
        }
    }
}
