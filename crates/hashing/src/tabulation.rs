//! Simple tabulation hashing (Zobrist / Carter–Wegman).
//!
//! Splits a 64-bit key into 8 bytes and XORs together one random 64-bit
//! table entry per byte. Simple tabulation is 3-wise independent, which is
//! the independence level the paper's implementation uses (Appendix B:
//! *"our implementation simply uses fast, 3-wise independent tabulation
//! hashing. In our experiments, we did not observe any significant
//! degradation in performance from this choice."*).

use crate::mix::SplitMix64;

const NUM_CHUNKS: usize = 8;
const TABLE_SIZE: usize = 256;

/// A 3-wise independent hash function `u64 -> u64` via simple tabulation.
///
/// Construction cost is 8 × 256 random words (16 KiB); evaluation is eight
/// table lookups and XORs, independent of key distribution.
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE_SIZE]; NUM_CHUNKS]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash").finish_non_exhaustive()
    }
}

impl TabulationHash {
    /// Builds a tabulation hash function with tables filled deterministically
    /// from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut stream = SplitMix64::new(seed ^ 0x7AB0_1A7E_0000_0001);
        let mut tables = Box::new([[0u64; TABLE_SIZE]; NUM_CHUNKS]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = stream.next_u64();
            }
        }
        Self { tables }
    }

    /// Hashes a 64-bit key.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u64) -> u64 {
        let bytes = key.to_le_bytes();
        let mut h = 0u64;
        for (chunk, &b) in bytes.iter().enumerate() {
            h ^= self.tables[chunk][b as usize];
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = TabulationHash::new(7);
        let b = TabulationHash::new(7);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let differs = (0..64u64).any(|k| a.hash(k) != b.hash(k));
        assert!(differs);
    }

    #[test]
    fn few_collisions_on_sequential_keys() {
        let h = TabulationHash::new(3);
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u64 {
            seen.insert(h.hash(k));
        }
        // With 100k keys into 2^64 outputs, collisions should be absent.
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn output_bits_are_balanced() {
        let h = TabulationHash::new(9);
        let n = 100_000u64;
        let mut ones = [0u32; 64];
        for k in 0..n {
            let v = h.hash(k);
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in ones.iter().enumerate() {
            let frac = f64::from(c) / n as f64;
            assert!(
                (frac - 0.5).abs() < 0.02,
                "bit {bit} set fraction {frac:.4}"
            );
        }
    }
}
