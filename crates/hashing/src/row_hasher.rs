//! Per-row bucket-and-sign hashing for Count-Sketch-style structures.
//!
//! A sketch of depth `s` and width `w` keeps, for each row `j ∈ [s]`, a pair
//! `(h_j, σ_j)` with `h_j(i) ∈ [w]` and `σ_j(i) ∈ {-1, +1}`. We derive both
//! from a single 64-bit hash per row: the top bits select the bucket (via
//! multiply-shift range reduction) and bit 0 selects the sign, which costs
//! one table-hash evaluation per row per feature.

use crate::mix::{fast_range, SplitMix64};
use crate::poly::PolyHash;
use crate::tabulation::TabulationHash;

/// Which hash family backs a sketch's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum HashFamilyKind {
    /// 3-wise independent simple tabulation (the paper's implementation
    /// choice, Appendix B). Fast; the default.
    #[default]
    Tabulation,
    /// k-wise independent polynomial hashing over `2^61 - 1` with the given
    /// independence level (theory-faithful; slower).
    Polynomial(usize),
}


/// A bucket index together with a ±1 sign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSign {
    /// Bucket index in `[0, width)`.
    pub bucket: u32,
    /// Sign flip: `+1.0` or `-1.0`.
    pub sign: f64,
}

enum RowFn {
    Tab(TabulationHash),
    Poly(PolyHash),
}

impl RowFn {
    #[inline]
    fn raw(&self, key: u64) -> u64 {
        match self {
            RowFn::Tab(t) => t.hash(key),
            // Spread the 61-bit field element over 64 bits so the
            // multiply-shift reduction sees uniform top bits.
            RowFn::Poly(p) => p.hash(key).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// The hash functions for a single sketch row.
pub struct RowHasher {
    f: RowFn,
    width: u32,
}

impl std::fmt::Debug for RowHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowHasher").field("width", &self.width).finish()
    }
}

impl RowHasher {
    /// Builds one row's `(h, σ)` pair deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(kind: HashFamilyKind, width: u32, seed: u64) -> Self {
        assert!(width > 0, "sketch row width must be nonzero");
        let f = match kind {
            HashFamilyKind::Tabulation => RowFn::Tab(TabulationHash::new(seed)),
            HashFamilyKind::Polynomial(k) => RowFn::Poly(PolyHash::new(k, seed)),
        };
        Self { f, width }
    }

    /// Row width this hasher maps into.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the bucket and sign for feature `key`.
    #[inline]
    #[must_use]
    pub fn bucket_sign(&self, key: u64) -> BucketSign {
        let h = self.f.raw(key);
        // Bit 63 is the sign; the low 63 bits (shifted up so the range
        // reduction sees uniform top bits) choose the bucket. Using disjoint
        // bits keeps h and σ independent of each other.
        let sign = if h >> 63 == 0 { 1.0 } else { -1.0 };
        let bucket = fast_range(h << 1, u64::from(self.width)) as u32;
        BucketSign { bucket, sign }
    }

    /// Returns only the bucket (for unsigned sketches such as Count-Min).
    #[inline]
    #[must_use]
    pub fn bucket(&self, key: u64) -> u32 {
        fast_range(self.f.raw(key), u64::from(self.width)) as u32
    }
}

/// The full set of row hashers for a depth-`s` sketch.
#[derive(Debug)]
pub struct RowHashers {
    rows: Vec<RowHasher>,
}

impl RowHashers {
    /// Builds `depth` independent row hashers of the given `width`,
    /// deterministically seeded from `seed`.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    #[must_use]
    pub fn new(kind: HashFamilyKind, depth: u32, width: u32, seed: u64) -> Self {
        assert!(depth > 0, "sketch depth must be nonzero");
        let mut seeds = SplitMix64::new(seed);
        let rows = (0..depth)
            .map(|_| RowHasher::new(kind, width, seeds.next_u64()))
            .collect();
        Self { rows }
    }

    /// Number of rows (sketch depth).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Row width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.rows[0].width()
    }

    /// The hasher for row `j`.
    #[inline]
    #[must_use]
    pub fn row(&self, j: usize) -> &RowHasher {
        &self.rows[j]
    }

    /// Iterates over `(row_index, BucketSign)` for a feature key.
    #[inline]
    pub fn bucket_signs<'a>(
        &'a self,
        key: u64,
    ) -> impl Iterator<Item = (usize, BucketSign)> + 'a {
        self.rows
            .iter()
            .enumerate()
            .map(move |(j, r)| (j, r.bucket_sign(key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_in_range_and_signs_unit() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            let h = RowHasher::new(kind, 37, 12);
            for key in 0..5000u64 {
                let bs = h.bucket_sign(key);
                assert!(bs.bucket < 37);
                assert!(bs.sign == 1.0 || bs.sign == -1.0);
            }
        }
    }

    #[test]
    fn signs_are_balanced() {
        let h = RowHasher::new(HashFamilyKind::Tabulation, 64, 5);
        let n = 100_000u64;
        let pos = (0..n).filter(|&k| h.bucket_sign(k).sign > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive-sign fraction {frac}");
    }

    #[test]
    fn buckets_are_balanced() {
        let w = 32u32;
        let h = RowHasher::new(HashFamilyKind::Tabulation, w, 77);
        let n = 320_000u64;
        let mut counts = vec![0u32; w as usize];
        for k in 0..n {
            counts[h.bucket_sign(k).bucket as usize] += 1;
        }
        let expected = n as f64 / f64::from(w);
        for &c in &counts {
            assert!((f64::from(c) - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn rows_are_mutually_independent_looking() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 4, 256, 3);
        // Two distinct rows should disagree on buckets for most keys.
        let agree = (0..10_000u64)
            .filter(|&k| hs.row(0).bucket_sign(k).bucket == hs.row(1).bucket_sign(k).bucket)
            .count();
        // Chance agreement is 1/256 ≈ 39 of 10k.
        assert!(agree < 200, "rows agree on {agree} of 10000 keys");
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = RowHashers::new(HashFamilyKind::Tabulation, 3, 128, 99);
        let b = RowHashers::new(HashFamilyKind::Tabulation, 3, 128, 99);
        for k in 0..100u64 {
            for j in 0..3 {
                assert_eq!(a.row(j).bucket_sign(k), b.row(j).bucket_sign(k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "width must be nonzero")]
    fn zero_width_panics() {
        let _ = RowHasher::new(HashFamilyKind::Tabulation, 0, 1);
    }

    #[test]
    #[should_panic(expected = "depth must be nonzero")]
    fn zero_depth_panics() {
        let _ = RowHashers::new(HashFamilyKind::Tabulation, 0, 4, 1);
    }
}
