//! Per-row bucket-and-sign hashing for Count-Sketch-style structures.
//!
//! A sketch of depth `s` and width `w` keeps, for each row `j ∈ [s]`, a pair
//! `(h_j, σ_j)` with `h_j(i) ∈ [w]` and `σ_j(i) ∈ {-1, +1}`. We derive both
//! from a single 64-bit hash per row: bit 63 selects the sign and the low 63
//! bits (shifted up so the multiply-shift range reduction sees uniform top
//! bits) select the bucket, which costs one table-hash evaluation per row
//! per feature.
//!
//! [`RowHashers`] stores the rows *monomorphized by family* — a
//! `Vec<TabulationHash>` or a `Vec<PolyHash>`, never a vector of enums — so
//! the batch entry points ([`RowHashers::fill_plan`],
//! [`RowHashers::for_each_coord`]) dispatch on the family once per call and
//! run the row loop on concrete types. The single-hash update pipeline in
//! `wmsketch-core` builds a [`CoordPlan`] per example and replays it for the
//! margin, the gradient scatter, and heap re-estimation, paying the hash
//! cost exactly once per `(feature, row)` pair.

use crate::mix::{fast_range, SplitMix64};
use crate::poly::PolyHash;
use crate::simd;
use crate::tabulation::TabulationHash;

/// Which hash family backs a sketch's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashFamilyKind {
    /// 3-wise independent simple tabulation (the paper's implementation
    /// choice, Appendix B). Fast; the default.
    #[default]
    Tabulation,
    /// k-wise independent polynomial hashing over `2^61 - 1` with the given
    /// independence level (theory-faithful; slower).
    Polynomial(usize),
}

/// Spreads `PolyHash`'s 61-bit field element over 64 bits so the
/// multiply-shift reduction sees uniform top bits.
const POLY_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// A bucket index together with a ±1 sign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSign {
    /// Bucket index in `[0, width)`.
    pub bucket: u32,
    /// Sign flip: `+1.0` or `-1.0`.
    pub sign: f64,
}

/// Splits a raw 64-bit hash into the paper's `(h_j, σ_j)` pair. Bit 63 is
/// the sign; the low 63 bits choose the bucket. Using disjoint bits keeps
/// `h` and `σ` independent of each other.
#[inline]
fn split_bucket_sign(h: u64, width: u64) -> BucketSign {
    let sign = if h >> 63 == 0 { 1.0 } else { -1.0 };
    let bucket = fast_range(h << 1, width) as u32;
    BucketSign { bucket, sign }
}

enum RowFn {
    Tab(TabulationHash),
    Poly(PolyHash),
}

impl RowFn {
    #[inline]
    fn raw(&self, key: u64) -> u64 {
        match self {
            RowFn::Tab(t) => t.hash(key),
            RowFn::Poly(p) => p.hash(key).wrapping_mul(POLY_SPREAD),
        }
    }
}

/// The hash functions for a single sketch row.
pub struct RowHasher {
    f: RowFn,
    width: u32,
}

impl std::fmt::Debug for RowHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowHasher")
            .field("width", &self.width)
            .finish()
    }
}

impl RowHasher {
    /// Builds one row's `(h, σ)` pair deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(kind: HashFamilyKind, width: u32, seed: u64) -> Self {
        assert!(width > 0, "sketch row width must be nonzero");
        let f = match kind {
            HashFamilyKind::Tabulation => RowFn::Tab(TabulationHash::new(seed)),
            HashFamilyKind::Polynomial(k) => RowFn::Poly(PolyHash::new(k, seed)),
        };
        Self { f, width }
    }

    /// Row width this hasher maps into.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the bucket and sign for feature `key`.
    #[inline]
    #[must_use]
    pub fn bucket_sign(&self, key: u64) -> BucketSign {
        split_bucket_sign(self.f.raw(key), u64::from(self.width))
    }

    /// Returns only the bucket (for unsigned sketches such as Count-Min).
    ///
    /// Uses the same disjoint-bit range reduction as
    /// [`RowHasher::bucket_sign`]: the sign bit (bit 63) never feeds the
    /// bucket choice, so `bucket(k) == bucket_sign(k).bucket` always holds.
    #[inline]
    #[must_use]
    pub fn bucket(&self, key: u64) -> u32 {
        fast_range(self.f.raw(key) << 1, u64::from(self.width)) as u32
    }
}

/// Monomorphized row storage: one vector of concrete hash functions per
/// family, so batch loops never dispatch per row.
#[derive(Clone)]
enum Rows {
    Tab(Vec<TabulationHash>),
    Poly(Vec<PolyHash>),
}

impl Rows {
    fn len(&self) -> usize {
        match self {
            Rows::Tab(v) => v.len(),
            Rows::Poly(v) => v.len(),
        }
    }

    #[inline]
    fn raw(&self, j: usize, key: u64) -> u64 {
        match self {
            Rows::Tab(v) => v[j].hash(key),
            Rows::Poly(v) => v[j].hash(key).wrapping_mul(POLY_SPREAD),
        }
    }
}

/// The full set of row hashers for a depth-`s` sketch.
///
/// Cloning copies the row hash functions byte for byte, so a clone assigns
/// every key the same cells and signs — the property sharded learners rely
/// on to keep per-shard sketches merge-compatible.
#[derive(Clone)]
pub struct RowHashers {
    rows: Rows,
    width: u32,
}

impl std::fmt::Debug for RowHashers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowHashers")
            .field("depth", &self.depth())
            .field("width", &self.width)
            .finish()
    }
}

impl RowHashers {
    /// Builds `depth` independent row hashers of the given `width`,
    /// deterministically seeded from `seed`.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`, or if `depth × width`
    /// overflows the `u32` cell-offset space used by [`CoordPlan`].
    #[must_use]
    pub fn new(kind: HashFamilyKind, depth: u32, width: u32, seed: u64) -> Self {
        assert!(depth > 0, "sketch depth must be nonzero");
        assert!(width > 0, "sketch row width must be nonzero");
        assert!(
            u64::from(depth) * u64::from(width) <= u64::from(u32::MAX),
            "sketch cell count {depth}×{width} exceeds the u32 offset space"
        );
        let mut seeds = SplitMix64::new(seed);
        let rows = match kind {
            HashFamilyKind::Tabulation => Rows::Tab(
                (0..depth)
                    .map(|_| TabulationHash::new(seeds.next_u64()))
                    .collect(),
            ),
            HashFamilyKind::Polynomial(k) => Rows::Poly(
                (0..depth)
                    .map(|_| PolyHash::new(k, seeds.next_u64()))
                    .collect(),
            ),
        };
        Self { rows, width }
    }

    /// Number of rows (sketch depth).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Row width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Heap bytes the row hash functions own. For the tabulation default
    /// this is 16 KiB *per row* — typically far more than a small
    /// sketch's cell array, and the reason a memory-governed registry
    /// must not cost models by the paper's §7.1 figure alone (hashers
    /// rebuild deterministically from the config seed, so spilling a
    /// model to disk reclaims this in full).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        match &self.rows {
            Rows::Tab(v) => {
                v.capacity() * std::mem::size_of::<TabulationHash>()
                    + v.iter().map(TabulationHash::resident_bytes).sum::<usize>()
            }
            Rows::Poly(v) => {
                v.capacity() * std::mem::size_of::<PolyHash>()
                    + v.iter().map(PolyHash::resident_bytes).sum::<usize>()
            }
        }
    }

    /// The bucket and sign row `j` assigns to `key`.
    ///
    /// # Panics
    /// Panics if `j >= depth`.
    #[inline]
    #[must_use]
    pub fn bucket_sign(&self, j: usize, key: u64) -> BucketSign {
        split_bucket_sign(self.rows.raw(j, key), u64::from(self.width))
    }

    /// The bucket row `j` assigns to `key` (unsigned sketches). Matches
    /// [`RowHashers::bucket_sign`]'s bucket: the sign bit is excluded from
    /// the reduction.
    #[inline]
    #[must_use]
    pub fn bucket(&self, j: usize, key: u64) -> u32 {
        fast_range(self.rows.raw(j, key) << 1, u64::from(self.width)) as u32
    }

    /// Iterates over `(row_index, BucketSign)` for a feature key.
    ///
    /// This is the *reference* path: it dispatches on the hash family per
    /// row. The batch entry points below hoist that dispatch out of the
    /// loop; the fused sketch updates use those.
    #[inline]
    pub fn bucket_signs(&self, key: u64) -> impl Iterator<Item = (usize, BucketSign)> + '_ {
        (0..self.rows.len()).map(move |j| (j, self.bucket_sign(j, key)))
    }

    /// Calls `f(flat_offset, sign)` for every row's cell of `key`, where
    /// `flat_offset = row × width + bucket` indexes a row-major cell array.
    /// Dispatches on the hash family once per call.
    #[inline]
    pub fn for_each_coord<F: FnMut(usize, f64)>(&self, key: u64, mut f: F) {
        let width = self.width as usize;
        let w = u64::from(self.width);
        match &self.rows {
            Rows::Tab(rows) => {
                for (j, t) in rows.iter().enumerate() {
                    let bs = split_bucket_sign(t.hash(key), w);
                    f(j * width + bs.bucket as usize, bs.sign);
                }
            }
            Rows::Poly(rows) => {
                for (j, p) in rows.iter().enumerate() {
                    let bs = split_bucket_sign(p.hash(key).wrapping_mul(POLY_SPREAD), w);
                    f(j * width + bs.bucket as usize, bs.sign);
                }
            }
        }
    }

    /// Calls `f(flat_offset)` for every row's cell of `key` (unsigned
    /// sketches). Buckets match [`RowHashers::bucket`].
    #[inline]
    pub fn for_each_bucket<F: FnMut(usize)>(&self, key: u64, mut f: F) {
        let width = self.width as usize;
        let w = u64::from(self.width);
        match &self.rows {
            Rows::Tab(rows) => {
                for (j, t) in rows.iter().enumerate() {
                    f(j * width + fast_range(t.hash(key) << 1, w) as usize);
                }
            }
            Rows::Poly(rows) => {
                for (j, p) in rows.iter().enumerate() {
                    let h = p.hash(key).wrapping_mul(POLY_SPREAD);
                    f(j * width + fast_range(h << 1, w) as usize);
                }
            }
        }
    }

    /// Rebuilds `plan` to cover `keys`, hashing each key exactly once per
    /// row. The family dispatch happens once per call, not per key.
    ///
    /// Tabulation-hashed rows batch the hash mixing four keys at a time
    /// through [`TabulationHash::hash_x4_avx2`] when the
    /// [`simd::active_hash_backend`] is AVX2 (the per-chunk lookup tables
    /// are shared across keys, so the mixing is embarrassingly parallel);
    /// polynomial rows always run the scalar path (their `2^61 − 1`
    /// field arithmetic needs 64×64 multiplies AVX2 does not have). Both
    /// paths produce bit-identical plans — see
    /// [`RowHashers::fill_plan_scalar`].
    pub fn fill_plan(&self, plan: &mut CoordPlan, keys: &[u32]) {
        #[cfg(target_arch = "x86_64")]
        if simd::active_hash_backend() == simd::Backend::Avx2 && keys.len() >= 4 {
            if let Rows::Tab(rows) = &self.rows {
                // SAFETY: Backend::Avx2 is only resolved on hosts that
                // report AVX2 at runtime (the dispatch invariant).
                unsafe { self.fill_plan_tab_avx2(rows, plan, keys) };
                return;
            }
        }
        self.fill_plan_scalar(plan, keys);
    }

    /// The scalar reference implementation of [`RowHashers::fill_plan`];
    /// always available, used directly by differential tests.
    pub fn fill_plan_scalar(&self, plan: &mut CoordPlan, keys: &[u32]) {
        plan.reset(self.rows.len(), keys.len());
        let width = self.width as usize;
        let w = u64::from(self.width);
        match &self.rows {
            Rows::Tab(rows) => {
                for &key in keys {
                    push_key_coords(rows, width, w, u64::from(key), plan, |t, k| t.hash(k));
                }
            }
            Rows::Poly(rows) => {
                for &key in keys {
                    push_key_coords(rows, width, w, u64::from(key), plan, |p, k| {
                        p.hash(k).wrapping_mul(POLY_SPREAD)
                    });
                }
            }
        }
    }

    /// AVX2 batch plan fill for tabulation rows: four keys per group, one
    /// [`TabulationHash::hash_x4_avx2`] per `(group, row)` pair, with the
    /// bucket/sign split and the strided slot-major stores done in scalar
    /// (they are cheap next to the table mixing). The plan contents are
    /// bit-identical to [`RowHashers::fill_plan_scalar`] — tabulation
    /// hashing is pure integer mixing and the split is shared code.
    ///
    /// # Safety
    /// The caller must ensure the host supports AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn fill_plan_tab_avx2(
        &self,
        rows: &[TabulationHash],
        plan: &mut CoordPlan,
        keys: &[u32],
    ) {
        let depth = rows.len();
        let width = self.width as usize;
        let w = u64::from(self.width);
        plan.depth = depth;
        plan.nnz = keys.len();
        plan.offsets.clear();
        plan.signs.clear();
        plan.offsets.resize(depth * keys.len(), 0);
        plan.signs.resize(depth * keys.len(), 0.0);
        let groups = keys.len() / 4;
        for g in 0..groups {
            let base = g * 4;
            let k4 = [
                u64::from(keys[base]),
                u64::from(keys[base + 1]),
                u64::from(keys[base + 2]),
                u64::from(keys[base + 3]),
            ];
            for (j, t) in rows.iter().enumerate() {
                // SAFETY: AVX2 availability is this function's own safety
                // contract, upheld by the dispatch in `fill_plan`.
                let h4 = unsafe { t.hash_x4_avx2(k4) };
                for (lane, h) in h4.into_iter().enumerate() {
                    let bs = split_bucket_sign(h, w);
                    let at = (base + lane) * depth + j;
                    plan.offsets[at] = (j * width + bs.bucket as usize) as u32;
                    plan.signs[at] = bs.sign;
                }
            }
        }
        for (slot, &key) in keys.iter().enumerate().skip(groups * 4) {
            for (j, t) in rows.iter().enumerate() {
                let bs = split_bucket_sign(t.hash(u64::from(key)), w);
                let at = slot * depth + j;
                plan.offsets[at] = (j * width + bs.bucket as usize) as u32;
                plan.signs[at] = bs.sign;
            }
        }
    }

    /// Starts an empty plan for incremental [`RowHashers::plan_push`] use
    /// (the AWM-Sketch plans only the features outside its active set).
    pub fn begin_plan(&self, plan: &mut CoordPlan) {
        plan.reset(self.rows.len(), 0);
    }

    /// Appends one key's coordinates to `plan`, returning its slot index.
    pub fn plan_push(&self, plan: &mut CoordPlan, key: u64) -> usize {
        let width = self.width as usize;
        let w = u64::from(self.width);
        match &self.rows {
            Rows::Tab(rows) => push_key_coords(rows, width, w, key, plan, |t, k| t.hash(k)),
            Rows::Poly(rows) => push_key_coords(rows, width, w, key, plan, |p, k| {
                p.hash(k).wrapping_mul(POLY_SPREAD)
            }),
        }
    }
}

#[inline]
fn push_key_coords<H>(
    rows: &[H],
    width: usize,
    w: u64,
    key: u64,
    plan: &mut CoordPlan,
    raw: impl Fn(&H, u64) -> u64,
) -> usize {
    let slot = plan.nnz;
    plan.nnz += 1;
    for (j, h) in rows.iter().enumerate() {
        let bs = split_bucket_sign(raw(h, key), w);
        plan.offsets.push((j * width + bs.bucket as usize) as u32);
        plan.signs.push(bs.sign);
    }
    slot
}

/// Cached per-example sketch coordinates — the heart of the single-hash
/// update pipeline.
///
/// For each planned key ("slot") the plan stores, per sketch row, the flat
/// cell offset `row × width + bucket` and the ±1 sign, laid out
/// slot-major so one slot's coordinates are a contiguous run. A sketch
/// update builds the plan once per example ([`RowHashers::fill_plan`]) and
/// then replays it for the margin dot-product, the gradient scatter, and
/// the post-scatter median re-estimation, instead of re-hashing the
/// example's features for each pass.
///
/// The plan also owns the median scratch buffer, so estimate recovery
/// during updates never allocates — including at depths past the stack
/// buffer limit of the cold-path [`wmsketch-sketch`] helper.
///
/// All buffers are retained across [`CoordPlan::reset`] calls; steady-state
/// updates do no allocation at all.
#[derive(Default, Clone)]
pub struct CoordPlan {
    /// `nnz × depth` flat cell offsets, slot-major.
    offsets: Vec<u32>,
    /// `nnz × depth` signs, parallel to `offsets`.
    signs: Vec<f64>,
    /// Rows per slot.
    depth: usize,
    /// Number of planned keys.
    nnz: usize,
    /// Depth-sized scratch for median recovery.
    scratch: Vec<f64>,
}

impl std::fmt::Debug for CoordPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordPlan")
            .field("depth", &self.depth)
            .field("nnz", &self.nnz)
            .finish()
    }
}

impl CoordPlan {
    /// An empty plan; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the plan and reserves room for `nnz` keys of `depth` rows.
    fn reset(&mut self, depth: usize, nnz: usize) {
        self.depth = depth;
        self.nnz = 0;
        self.offsets.clear();
        self.signs.clear();
        let cap = depth * nnz;
        self.offsets.reserve(cap);
        self.signs.reserve(cap);
    }

    /// Number of planned keys.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Heap bytes the plan's retained buffers own (offsets, signs, and
    /// the median scratch) — instance-owned working state that the §7.1
    /// memory model deliberately excludes but truthful resident
    /// accounting must include.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.signs.capacity() * std::mem::size_of::<f64>()
            + self.scratch.capacity() * std::mem::size_of::<f64>()
    }

    /// Rows per key.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The flat offsets and signs of slot `slot`, each of length `depth`.
    ///
    /// # Panics
    /// Panics if `slot >= nnz`.
    #[inline]
    #[must_use]
    pub fn coords(&self, slot: usize) -> (&[u32], &[f64]) {
        let lo = slot * self.depth;
        let hi = lo + self.depth;
        (&self.offsets[lo..hi], &self.signs[lo..hi])
    }

    /// The sign-corrected dot of slot `slot` against a cell array:
    /// `Σ_j signs[j] · cells[offsets[j]]`, accumulated in row order —
    /// bit-identical to the naive per-row traversal (the
    /// [`simd::gather_dot`] kernel vectorizes only the loads and
    /// multiplies; the reduction stays in row order).
    #[inline]
    #[must_use]
    pub fn slot_projection(&self, slot: usize, cells: &[f64]) -> f64 {
        let (offsets, signs) = self.coords(slot);
        simd::gather_dot(cells, offsets, signs)
    }

    /// Adds `signs[j] · delta` to each of slot `slot`'s cells, through
    /// the runtime-dispatched [`simd::scatter_add`] kernel.
    #[inline]
    pub fn slot_scatter(&self, slot: usize, cells: &mut [f64], delta: f64) {
        let (offsets, signs) = self.coords(slot);
        simd::scatter_add(cells, offsets, signs, delta);
    }

    /// Fills the plan-owned scratch with slot `slot`'s sign-corrected
    /// scaled cell values — `scale · signs[j] · cells[offsets[j]]` for each
    /// row `j` — and returns it mutably, ready for in-place median
    /// selection. No allocation at any depth once the scratch has grown.
    ///
    /// The median itself lives in `wmsketch-sketch` (`median_inplace`);
    /// keeping it there avoids duplicating the estimator's tie/ordering
    /// conventions across crates.
    #[inline]
    pub fn slot_values(&mut self, slot: usize, cells: &[f64], scale: f64) -> &mut [f64] {
        let lo = slot * self.depth;
        let hi = lo + self.depth;
        self.scratch.clear();
        self.scratch.resize(self.depth, 0.0);
        simd::gather_scaled(
            cells,
            &self.offsets[lo..hi],
            &self.signs[lo..hi],
            scale,
            &mut self.scratch,
        );
        &mut self.scratch
    }

    /// Fused scatter + re-estimation gather: adds `signs[j] · delta` to
    /// each of slot `slot`'s cells and, in the same pass, fills the
    /// plan-owned scratch with the *post-update* sign-corrected scaled
    /// values (`scale · signs[j] · cells[offsets[j]]`), returning the
    /// scratch for in-place median selection.
    ///
    /// A slot's offsets land in distinct sketch rows and therefore distinct
    /// cells, so reading each cell immediately after its own write is
    /// bit-identical to a separate [`CoordPlan::slot_scatter`] followed by
    /// [`CoordPlan::slot_values`].
    #[inline]
    pub fn slot_scatter_and_values(
        &mut self,
        slot: usize,
        cells: &mut [f64],
        delta: f64,
        scale: f64,
    ) -> &mut [f64] {
        let lo = slot * self.depth;
        let hi = lo + self.depth;
        self.scratch.clear();
        self.scratch.resize(self.depth, 0.0);
        simd::scatter_add_values(
            cells,
            &self.offsets[lo..hi],
            &self.signs[lo..hi],
            delta,
            scale,
            &mut self.scratch,
        );
        &mut self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_in_range_and_signs_unit() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            let h = RowHasher::new(kind, 37, 12);
            for key in 0..5000u64 {
                let bs = h.bucket_sign(key);
                assert!(bs.bucket < 37);
                assert!(bs.sign == 1.0 || bs.sign == -1.0);
            }
        }
    }

    #[test]
    fn signs_are_balanced() {
        let h = RowHasher::new(HashFamilyKind::Tabulation, 64, 5);
        let n = 100_000u64;
        let pos = (0..n).filter(|&k| h.bucket_sign(k).sign > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive-sign fraction {frac}");
    }

    #[test]
    fn buckets_are_balanced() {
        let w = 32u32;
        let h = RowHasher::new(HashFamilyKind::Tabulation, w, 77);
        let n = 320_000u64;
        let mut counts = vec![0u32; w as usize];
        for k in 0..n {
            counts[h.bucket_sign(k).bucket as usize] += 1;
        }
        let expected = n as f64 / f64::from(w);
        for &c in &counts {
            assert!((f64::from(c) - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn bucket_matches_bucket_sign_bucket() {
        // Regression test: `bucket` once fed the sign bit into the range
        // reduction, so unsigned and signed users of the same row disagreed
        // on bucket assignment.
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            let h = RowHasher::new(kind, 53, 21);
            for key in 0..20_000u64 {
                assert_eq!(h.bucket(key), h.bucket_sign(key).bucket, "key {key}");
            }
            let hs = RowHashers::new(kind, 3, 53, 21);
            for key in 0..2_000u64 {
                for j in 0..3 {
                    assert_eq!(hs.bucket(j, key), hs.bucket_sign(j, key).bucket);
                }
            }
        }
    }

    #[test]
    fn rows_are_mutually_independent_looking() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 4, 256, 3);
        // Two distinct rows should disagree on buckets for most keys.
        let agree = (0..10_000u64)
            .filter(|&k| hs.bucket_sign(0, k).bucket == hs.bucket_sign(1, k).bucket)
            .count();
        // Chance agreement is 1/256 ≈ 39 of 10k.
        assert!(agree < 200, "rows agree on {agree} of 10000 keys");
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = RowHashers::new(HashFamilyKind::Tabulation, 3, 128, 99);
        let b = RowHashers::new(HashFamilyKind::Tabulation, 3, 128, 99);
        for k in 0..100u64 {
            for j in 0..3 {
                assert_eq!(a.bucket_sign(j, k), b.bucket_sign(j, k));
            }
        }
    }

    #[test]
    fn rowhashers_match_single_row_hashers() {
        // RowHashers must agree with RowHasher built from the same derived
        // seeds — i.e. the typed-storage refactor preserved the seeding.
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(3)] {
            let hs = RowHashers::new(kind, 4, 64, 123);
            let mut seeds = SplitMix64::new(123);
            for j in 0..4usize {
                let single = RowHasher::new(kind, 64, seeds.next_u64());
                for k in 0..500u64 {
                    assert_eq!(hs.bucket_sign(j, k), single.bucket_sign(k));
                }
            }
        }
    }

    #[test]
    fn for_each_coord_matches_bucket_signs() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            let hs = RowHashers::new(kind, 5, 48, 9);
            for key in 0..1000u64 {
                let mut coords = Vec::new();
                hs.for_each_coord(key, |offset, sign| coords.push((offset, sign)));
                let expect: Vec<(usize, f64)> = hs
                    .bucket_signs(key)
                    .map(|(j, bs)| (j * 48 + bs.bucket as usize, bs.sign))
                    .collect();
                assert_eq!(coords, expect);
                let mut buckets = Vec::new();
                hs.for_each_bucket(key, |offset| buckets.push(offset));
                let expect: Vec<usize> = expect.iter().map(|&(offset, _)| offset).collect();
                assert_eq!(buckets, expect);
            }
        }
    }

    #[test]
    fn plan_matches_reference_traversal() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            for depth in [1u32, 3, 7] {
                let hs = RowHashers::new(kind, depth, 96, 4);
                let keys: Vec<u32> = vec![0, 5, 17, 96, 1000, u32::MAX];
                let mut plan = CoordPlan::new();
                hs.fill_plan(&mut plan, &keys);
                assert_eq!(plan.nnz(), keys.len());
                assert_eq!(plan.depth(), depth as usize);
                for (slot, &key) in keys.iter().enumerate() {
                    let (offsets, signs) = plan.coords(slot);
                    for (j, bs) in hs.bucket_signs(u64::from(key)) {
                        assert_eq!(
                            offsets[j] as usize,
                            j * 96 + bs.bucket as usize,
                            "kind {kind:?} depth {depth} key {key} row {j}"
                        );
                        assert_eq!(signs[j], bs.sign);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_plan_matches_batch_plan() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 4, 64, 77);
        let keys: Vec<u32> = vec![3, 9, 81, 6561];
        let mut batch = CoordPlan::new();
        hs.fill_plan(&mut batch, &keys);
        let mut inc = CoordPlan::new();
        hs.begin_plan(&mut inc);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(hs.plan_push(&mut inc, u64::from(k)), i);
        }
        assert_eq!(inc.nnz(), batch.nnz());
        for slot in 0..keys.len() {
            assert_eq!(inc.coords(slot), batch.coords(slot));
        }
    }

    #[test]
    fn slot_helpers_project_scatter_and_fill_scratch() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 5, 32, 8);
        let mut plan = CoordPlan::new();
        hs.fill_plan(&mut plan, &[7]);
        let mut cells = vec![0.0f64; 5 * 32];
        plan.slot_scatter(0, &mut cells, 2.5);
        // Projection undoes the signs: 5 rows × 2.5.
        assert_eq!(plan.slot_projection(0, &cells), 12.5);
        // Sign-corrected scaled values are all 2 × 2.5.
        assert_eq!(plan.slot_values(0, &cells, 2.0), &[5.0; 5]);
    }

    #[test]
    fn fused_scatter_and_values_matches_separate_calls() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 7, 64, 5);
        let mut plan_a = CoordPlan::new();
        let mut plan_b = CoordPlan::new();
        hs.fill_plan(&mut plan_a, &[11, 22, 33]);
        hs.fill_plan(&mut plan_b, &[11, 22, 33]);
        let mut cells_a: Vec<f64> = (0..7 * 64).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut cells_b = cells_a.clone();
        for slot in 0..3 {
            let delta = 0.25 * (slot as f64 + 1.0);
            let fused: Vec<f64> = plan_a
                .slot_scatter_and_values(slot, &mut cells_a, delta, 2.5)
                .to_vec();
            plan_b.slot_scatter(slot, &mut cells_b, delta);
            let separate = plan_b.slot_values(slot, &cells_b, 2.5).to_vec();
            assert_eq!(fused, separate);
        }
        assert_eq!(cells_a, cells_b);
    }

    #[test]
    fn plan_is_reusable_without_leaking_previous_contents() {
        let hs = RowHashers::new(HashFamilyKind::Tabulation, 2, 64, 1);
        let mut plan = CoordPlan::new();
        hs.fill_plan(&mut plan, &[1, 2, 3, 4, 5]);
        hs.fill_plan(&mut plan, &[9]);
        assert_eq!(plan.nnz(), 1);
        let (offsets, signs) = plan.coords(0);
        assert_eq!(offsets.len(), 2);
        assert_eq!(signs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be nonzero")]
    fn zero_width_panics() {
        let _ = RowHasher::new(HashFamilyKind::Tabulation, 0, 1);
    }

    #[test]
    #[should_panic(expected = "depth must be nonzero")]
    fn zero_depth_panics() {
        let _ = RowHashers::new(HashFamilyKind::Tabulation, 0, 4, 1);
    }
}
