//! Property tests pinning the SIMD kernels to their scalar references.
//!
//! Every kernel in `wmsketch_hashing::simd` promises **bit-identical**
//! results across backends; these tests pin the dispatch to the AVX2
//! backend where the host supports it — the profitability-calibrated
//! default may legitimately choose scalar, which would make a
//! default-vs-scalar comparison vacuous, and a [`force_backend`] pin
//! outranks even `WMSKETCH_FORCE_SCALAR`, so the AVX2 bodies keep
//! differential coverage on every CI leg — and drive it against the
//! always-available scalar reference implementations over randomized
//! shapes, including:
//!
//! * gathers at lengths around the 4-lane group boundary and past the
//!   64-row stack-buffer depth;
//! * scatters with **forced offset collisions** — tiny cell pools plus an
//!   explicit duplicated-lane injection, exercising the per-group
//!   conflict check's scalar spill;
//! * `fill_plan` against `fill_plan_scalar` across both hash families,
//!   depths > 64, and key counts that are not multiples of the group
//!   width.

use proptest::prelude::*;
use wmsketch_hashing::simd::{
    self, force_backend, gather_dot, gather_dot_scalar, gather_scaled, gather_scaled_scalar,
    scatter_add, scatter_add_scalar, scatter_add_values, scatter_add_values_scalar, Backend,
    BackendGuard,
};
use wmsketch_hashing::{splitmix64, CoordPlan, HashFamilyKind, RowHashers};

/// Serializes the tests in this file: the backend override is
/// process-global, so a concurrently running test dropping its own pin
/// would silently un-pin this one mid-run — results stay bit-identical
/// either way, but the AVX2-vs-scalar comparison would quietly degrade to
/// scalar-vs-scalar on hosts whose calibrated default is scalar.
static PIN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn pin_avx2() -> (std::sync::MutexGuard<'static, ()>, BackendGuard) {
    let lock = PIN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (lock, force_backend(Some(Backend::Avx2)))
}

/// Deterministic pseudo-random cells in `[-2, 2]`.
fn cells(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| (splitmix64(salt ^ (i as u64)) as f64 / u64::MAX as f64) * 4.0 - 2.0)
        .collect()
}

fn signs_from(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
}

proptest! {
    /// Dispatched gathers equal the scalar reference bit for bit.
    #[test]
    fn gathers_match_scalar(
        (n, cell_count, salt) in (0usize..200, 1usize..300, 0u64..1_000_000),
        sign_bits in prop::collection::vec(prop::sample::select(vec![true, false]), 200..201),
        scale in -4.0f64..4.0,
    ) {
        let _pin = pin_avx2();
        let table = cells(cell_count, salt);
        let offsets: Vec<u32> = (0..n)
            .map(|i| (splitmix64(salt.wrapping_add(i as u64 * 13)) % cell_count as u64) as u32)
            .collect();
        let signs = signs_from(&sign_bits[..n]);

        let want = gather_dot_scalar(&table, &offsets, &signs);
        let got = gather_dot(&table, &offsets, &signs);
        prop_assert_eq!(got.to_bits(), want.to_bits());

        let mut want_out = vec![0.0; n];
        let mut got_out = vec![0.0; n];
        gather_scaled_scalar(&table, &offsets, &signs, scale, &mut want_out);
        gather_scaled(&table, &offsets, &signs, scale, &mut got_out);
        for (a, b) in want_out.iter().zip(&got_out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Dispatched scatters equal the scalar reference bit for bit under
    /// forced offset collisions: a cell pool far smaller than the offset
    /// count guarantees repeats, and one 4-lane group is overwritten with
    /// a fully duplicated offset so the conflict spill always triggers.
    #[test]
    fn scatters_match_scalar_under_forced_collisions(
        (n, pool, salt) in (4usize..160, 1usize..12, 0u64..1_000_000),
        sign_bits in prop::collection::vec(prop::sample::select(vec![true, false]), 160..161),
        (delta, scale) in (-3.0f64..3.0, -2.0f64..2.0),
        dup_group in 0usize..40,
    ) {
        let _pin = pin_avx2();
        let mut offsets: Vec<u32> = (0..n)
            .map(|i| (splitmix64(salt.wrapping_add(i as u64 * 29)) % pool as u64) as u32)
            .collect();
        // Force one whole vector group onto a single cell.
        let g = (dup_group % (n / 4)) * 4;
        let target = offsets[g];
        offsets[g..g + 4].fill(target);
        let signs = signs_from(&sign_bits[..n]);
        let base = cells(pool, salt ^ 0xC0FFEE);

        let mut want_cells = base.clone();
        let mut got_cells = base.clone();
        scatter_add_scalar(&mut want_cells, &offsets, &signs, delta);
        scatter_add(&mut got_cells, &offsets, &signs, delta);
        for (a, b) in want_cells.iter().zip(&got_cells) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let mut want_cells = base.clone();
        let mut got_cells = base.clone();
        let mut want_out = vec![0.0; n];
        let mut got_out = vec![0.0; n];
        scatter_add_values_scalar(&mut want_cells, &offsets, &signs, delta, scale, &mut want_out);
        scatter_add_values(&mut got_cells, &offsets, &signs, delta, scale, &mut got_out);
        for (a, b) in want_cells.iter().zip(&got_cells) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in want_out.iter().zip(&got_out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The dispatched `fill_plan` (AVX2 tabulation batch path where
    /// available) produces plans bit-identical to `fill_plan_scalar`
    /// across families, depths past the stack-buffer limit, widths, and
    /// key counts straddling the 4-key group boundary.
    #[test]
    fn fill_plan_matches_scalar_reference(
        kind in prop::sample::select(vec![
            HashFamilyKind::Tabulation,
            HashFamilyKind::Polynomial(4),
        ]),
        depth in prop::sample::select(vec![1u32, 2, 3, 5, 14, 16, 64, 80, 96]),
        width in prop::sample::select(vec![1u32, 7, 128, 1024]),
        seed in 0u64..1_000,
        n_keys in 0usize..40,
        key_salt in 0u64..1_000_000,
    ) {
        let _pin = pin_avx2();
        let hashers = RowHashers::new(kind, depth, width, seed);
        let keys: Vec<u32> = (0..n_keys)
            .map(|i| (splitmix64(key_salt ^ (i as u64 * 7)) % (1 << 20)) as u32)
            .collect();
        let mut dispatched = CoordPlan::new();
        let mut scalar = CoordPlan::new();
        // Fill both plans twice with different key sets first, proving
        // reuse does not leak previous contents on either path.
        hashers.fill_plan(&mut dispatched, &[1, 2, 3, 4, 5, 6, 7]);
        hashers.fill_plan_scalar(&mut scalar, &[9]);
        hashers.fill_plan(&mut dispatched, &keys);
        hashers.fill_plan_scalar(&mut scalar, &keys);
        prop_assert_eq!(dispatched.nnz(), scalar.nnz());
        prop_assert_eq!(dispatched.depth(), scalar.depth());
        for slot in 0..keys.len() {
            let (od, sd) = dispatched.coords(slot);
            let (os, ss) = scalar.coords(slot);
            prop_assert_eq!(od, os);
            for (a, b) in sd.iter().zip(ss) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// End-to-end slot helpers (projection, scatter, value fill, fused
    /// scatter+values) agree bit for bit between a scalar-forced run and
    /// the host-default backend, over plans built from real hashing.
    #[test]
    fn slot_helpers_backend_equivalence(
        kind in prop::sample::select(vec![
            HashFamilyKind::Tabulation,
            HashFamilyKind::Polynomial(3),
        ]),
        depth in prop::sample::select(vec![1u32, 4, 14, 80]),
        seed in 0u64..500,
        n_keys in 1usize..12,
        delta in -2.0f64..2.0,
    ) {
        let _lock = PIN_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let width = 64u32;
        let hashers = RowHashers::new(kind, depth, width, seed);
        let keys: Vec<u32> = (0..n_keys as u32).map(|i| i * 31 + seed as u32 % 97).collect();
        let cell_count = (depth * width) as usize;
        let base = cells(cell_count, seed ^ 0xFEED);
        let scale = f64::from(depth).sqrt();

        let run = |backend: Option<simd::Backend>| {
            let _guard = simd::force_backend(backend);
            let mut plan = CoordPlan::new();
            hashers.fill_plan(&mut plan, &keys);
            let mut z = base.clone();
            let mut projections = Vec::new();
            let mut values = Vec::new();
            for slot in 0..keys.len() {
                projections.push(plan.slot_projection(slot, &z));
                plan.slot_scatter(slot, &mut z, delta * (slot as f64 + 1.0));
                values.extend_from_slice(plan.slot_values(slot, &z, scale));
                values.extend_from_slice(plan.slot_scatter_and_values(
                    slot,
                    &mut z,
                    delta,
                    scale,
                ));
            }
            (z, projections, values)
        };
        let (z_s, proj_s, vals_s) = run(Some(simd::Backend::Scalar));
        let (z_d, proj_d, vals_d) = run(Some(simd::Backend::Avx2));
        for (a, b) in z_s.iter().zip(&z_d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in proj_s.iter().zip(&proj_d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in vals_s.iter().zip(&vals_d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
