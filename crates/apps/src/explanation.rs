//! Streaming explanation (§8.1): finding attributes indicative of outliers.
//!
//! The classification framing: label outliers `+1` and inliers `−1`, train
//! a budgeted classifier on 1-sparse attribute vectors, and read the
//! heavily-weighted features as the explanation. The paper compares this
//! against MacroBase's heuristic — track the *frequent* attributes of the
//! outlier class (or of both classes) with Space-Saving and rank by
//! relative risk afterwards.
//!
//! [`ExactRiskTable`] provides the ground-truth relative risks used to
//! score either approach (Figs. 8 and 9).

use wmsketch_hashing::FastHashMap;

/// Exact per-feature occurrence counts by class, supporting relative-risk
/// queries.
///
/// The relative risk of feature `x` is
/// `r_x = p(y=+1 | x present) / p(y=+1 | x absent)` (§8.1). Counts are at
/// *row* granularity: call [`ExactRiskTable::observe_row`] once per row
/// with all its attribute features.
#[derive(Debug, Clone, Default)]
pub struct ExactRiskTable {
    /// feature → (rows containing it that are outliers, rows containing it).
    counts: FastHashMap<u32, (u64, u64)>,
    outlier_rows: u64,
    total_rows: u64,
}

impl ExactRiskTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one row's features and outlier label.
    pub fn observe_row(&mut self, features: &[u32], outlier: bool) {
        self.total_rows += 1;
        if outlier {
            self.outlier_rows += 1;
        }
        for &f in features {
            let e = self.counts.entry(f).or_insert((0, 0));
            e.1 += 1;
            if outlier {
                e.0 += 1;
            }
        }
    }

    /// Rows seen.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// The relative risk of `feature`; `None` if the feature was never
    /// seen, it appeared in every row (risk undefined), or no outliers
    /// exist without it and none with it (0/0).
    #[must_use]
    pub fn relative_risk(&self, feature: u32) -> Option<f64> {
        let &(out_with, tot_with) = self.counts.get(&feature)?;
        let tot_without = self.total_rows - tot_with;
        if tot_with == 0 || tot_without == 0 {
            return None;
        }
        let out_without = self.outlier_rows - out_with;
        let p_with = out_with as f64 / tot_with as f64;
        let p_without = out_without as f64 / tot_without as f64;
        if p_without == 0.0 {
            // Feature exclusively in outliers: conventionally infinite;
            // report a large finite value so rankings remain usable.
            return Some(f64::INFINITY);
        }
        Some(p_with / p_without)
    }

    /// Number of rows containing `feature`.
    #[must_use]
    pub fn support(&self, feature: u32) -> u64 {
        self.counts.get(&feature).map_or(0, |&(_, tot)| tot)
    }

    /// All features seen at least `min_support` times.
    #[must_use]
    pub fn features_with_support(&self, min_support: u64) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .counts
            .iter()
            .filter(|(_, &(_, tot))| tot >= min_support)
            .map(|(&f, _)| f)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_of_pure_outlier_feature_is_infinite() {
        let mut t = ExactRiskTable::new();
        t.observe_row(&[1], true);
        t.observe_row(&[2], false);
        t.observe_row(&[2], false);
        assert_eq!(t.relative_risk(1), Some(f64::INFINITY));
    }

    #[test]
    fn neutral_feature_has_risk_one() {
        let mut t = ExactRiskTable::new();
        // Feature 5 appears in half the outliers and half the inliers.
        t.observe_row(&[5], true);
        t.observe_row(&[6], true);
        t.observe_row(&[5], false);
        t.observe_row(&[6], false);
        let r = t.relative_risk(5).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "risk {r}");
    }

    #[test]
    fn risky_feature_scores_above_protective() {
        let mut t = ExactRiskTable::new();
        for _ in 0..80 {
            t.observe_row(&[1, 3], true); // 1 rides with outliers
        }
        for _ in 0..20 {
            t.observe_row(&[1, 3], false);
        }
        for _ in 0..20 {
            t.observe_row(&[2, 3], true); // 2 rides with inliers
        }
        for _ in 0..80 {
            t.observe_row(&[2, 3], false);
        }
        let r1 = t.relative_risk(1).unwrap();
        let r2 = t.relative_risk(2).unwrap();
        assert!(r1 > 2.0, "risky feature r = {r1}");
        assert!(r2 < 0.5, "protective feature r = {r2}");
        // Feature 3 is in every row → undefined.
        assert_eq!(t.relative_risk(3), None);
    }

    #[test]
    fn unseen_feature_is_none() {
        let t = ExactRiskTable::new();
        assert_eq!(t.relative_risk(9), None);
    }

    #[test]
    fn support_filtering() {
        let mut t = ExactRiskTable::new();
        t.observe_row(&[1], true);
        t.observe_row(&[1, 2], false);
        assert_eq!(t.support(1), 2);
        assert_eq!(t.support(2), 1);
        assert_eq!(t.features_with_support(2), vec![1]);
    }
}
