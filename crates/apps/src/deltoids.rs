//! Relative-deltoid detection over paired streams (§8.2).
//!
//! The task: estimate per-item occurrence ratios `φ(i) = n₁(i)/n₂(i)`
//! between two concurrent streams and retrieve the items where `φ` (or its
//! reciprocal) is large. Three detectors:
//!
//! * [`ExactRatioTable`] — exact counts, defines ground truth;
//! * [`PairedCountMin`] — the Cormode–Muthukrishnan baseline: one
//!   Count-Min sketch per stream, ratio of estimates (Fig. 10's "CM" and
//!   "CMx8");
//! * [`DeltoidDetector`] — the paper's approach: a budgeted classifier
//!   labelling stream-1 items `+1` and stream-2 items `−1`; the logistic
//!   weight of an item converges (λ→0) to `log φ(i)` up to the class
//!   prior, so the top positive weights are the deltoids.

use wmsketch_datagen::{PacketEvent, StreamSide};
use wmsketch_hashing::FastHashMap;
use wmsketch_learn::{OnlineLearner, SparseVector, TopKRecovery, WeightEntry};
use wmsketch_sketch::CountMinSketch;

/// Exact per-item counts on both sides.
#[derive(Debug, Clone, Default)]
pub struct ExactRatioTable {
    counts: FastHashMap<u32, (u64, u64)>,
}

impl ExactRatioTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn observe(&mut self, event: PacketEvent) {
        let e = self.counts.entry(event.addr).or_insert((0, 0));
        match event.side {
            StreamSide::Outbound => e.0 += 1,
            StreamSide::Inbound => e.1 += 1,
        }
    }

    /// Outbound/inbound counts of `addr`.
    #[must_use]
    pub fn counts(&self, addr: u32) -> (u64, u64) {
        self.counts.get(&addr).copied().unwrap_or((0, 0))
    }

    /// The occurrence ratio `n_out/n_in` with ±1 smoothing on the
    /// denominator to keep never-inbound items finite and rankable.
    #[must_use]
    pub fn smoothed_ratio(&self, addr: u32) -> f64 {
        let (o, i) = self.counts(addr);
        o as f64 / (i as f64 + 1.0)
    }

    /// All items whose smoothed log-ratio is at least `log_threshold`,
    /// restricted to items with at least `min_out` outbound occurrences
    /// (rare items cannot certify a large ratio).
    #[must_use]
    pub fn items_above(&self, log_threshold: f64, min_out: u64) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .counts
            .iter()
            .filter(|(_, &(o, _))| o >= min_out)
            .filter(|(&addr, _)| self.smoothed_ratio(addr).ln() >= log_threshold)
            .map(|(&addr, _)| addr)
            .collect();
        v.sort_unstable();
        v
    }

    /// Iterates all observed items.
    pub fn items(&self) -> impl Iterator<Item = u32> + '_ {
        self.counts.keys().copied()
    }
}

/// The paired-Count-Min baseline of Cormode & Muthukrishnan (2005a).
#[derive(Debug)]
pub struct PairedCountMin {
    out: CountMinSketch,
    inb: CountMinSketch,
}

impl PairedCountMin {
    /// Two `depth × width` Count-Min sketches (one per stream).
    #[must_use]
    pub fn new(depth: u32, width: u32, seed: u64) -> Self {
        Self {
            out: CountMinSketch::new(depth, width, seed),
            inb: CountMinSketch::new(depth, width, seed.wrapping_add(1)),
        }
    }

    /// Sizes a pair of depth-4 sketches to a byte budget (4 B per counter,
    /// two sketches).
    #[must_use]
    pub fn with_budget_bytes(budget: usize, seed: u64) -> Self {
        let cells_per_sketch = (budget / (2 * 4)).max(8);
        let depth = 4u32;
        let width = (cells_per_sketch as u32 / depth).max(2);
        Self::new(depth, width, seed)
    }

    /// Memory cost in bytes under the paper's cost model.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        (self.out.size() + self.inb.size()) * 4
    }

    /// Records one event.
    pub fn observe(&mut self, event: PacketEvent) {
        match event.side {
            StreamSide::Outbound => self.out.update(u64::from(event.addr), 1.0),
            StreamSide::Inbound => self.inb.update(u64::from(event.addr), 1.0),
        }
    }

    /// Estimated smoothed ratio of `addr` (denominator +1, matching
    /// [`ExactRatioTable::smoothed_ratio`]).
    #[must_use]
    pub fn ratio_estimate(&self, addr: u32) -> f64 {
        let o = self.out.estimate(u64::from(addr));
        let i = self.inb.estimate(u64::from(addr));
        o / (i + 1.0)
    }

    /// The `k` items with the largest estimated ratios among `candidates`.
    #[must_use]
    pub fn top_k_by_ratio(&self, candidates: impl Iterator<Item = u32>, k: usize) -> Vec<u32> {
        let mut scored: Vec<(u32, f64)> = candidates.map(|a| (a, self.ratio_estimate(a))).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("NaN ratio")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored.into_iter().map(|(a, _)| a).collect()
    }
}

/// Classifier-based deltoid detection: wraps any budgeted online learner.
///
/// Outbound events become `(one_hot(addr), +1)`, inbound events
/// `(one_hot(addr), −1)`; heavily positive weights mark outbound-heavy
/// items and heavily negative weights inbound-heavy ones.
#[derive(Debug)]
pub struct DeltoidDetector<L> {
    learner: L,
    events: u64,
}

impl<L: OnlineLearner + TopKRecovery> DeltoidDetector<L> {
    /// Wraps a learner.
    #[must_use]
    pub fn new(learner: L) -> Self {
        Self { learner, events: 0 }
    }

    /// Records one event.
    pub fn observe(&mut self, event: PacketEvent) {
        self.events += 1;
        let y = match event.side {
            StreamSide::Outbound => 1,
            StreamSide::Inbound => -1,
        };
        self.learner
            .update(&SparseVector::one_hot(event.addr, 1.0), y);
    }

    /// Events seen.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Access to the wrapped learner.
    #[must_use]
    pub fn learner(&self) -> &L {
        &self.learner
    }

    /// The `k` most outbound-heavy items: top-k *positive* weights.
    #[must_use]
    pub fn top_outbound(&self, k: usize) -> Vec<u32> {
        // Scan the learner's full recoverable set: inbound-heavy items have
        // strongly negative weights and can otherwise crowd out the
        // positive tail.
        let mut entries: Vec<WeightEntry> = self
            .learner
            .recover_top_k(usize::MAX)
            .into_iter()
            .filter(|e| e.weight > 0.0)
            .collect();
        entries.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("NaN weight"));
        entries.truncate(k);
        entries.into_iter().map(|e| e.feature).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsketch_core::{AwmSketch, AwmSketchConfig};
    use wmsketch_datagen::{PacketTraceConfig, PacketTraceGen};

    fn gen() -> PacketTraceGen {
        PacketTraceGen::new(PacketTraceConfig {
            n_addrs: 2048,
            zipf_s: 1.05,
            n_deltoids: 8,
            ratio: 32.0,
            stride: 7,
            seed: 2,
        })
    }

    #[test]
    fn exact_table_ratios_reflect_planting() {
        let mut g = gen();
        let mut t = ExactRatioTable::new();
        for e in g.take(200_000) {
            t.observe(e);
        }
        // Average smoothed ratio over deltoids far exceeds non-deltoids'.
        let d_avg: f64 = g
            .deltoids()
            .iter()
            .map(|&a| t.smoothed_ratio(a))
            .sum::<f64>()
            / g.deltoids().len() as f64;
        assert!(d_avg > 5.0, "deltoid avg ratio {d_avg:.1}");
        let (o, i) = t.counts(0); // rank-0 address: heavy, balanced
        let r = o as f64 / i as f64;
        assert!((r - 1.0).abs() < 0.1, "balanced item ratio {r:.2}");
    }

    #[test]
    fn paired_cm_overestimates_but_ranks_heavy_deltoids() {
        let mut g = gen();
        let mut t = ExactRatioTable::new();
        let mut cm = PairedCountMin::new(4, 1024, 3);
        for e in g.take(100_000) {
            t.observe(e);
            cm.observe(e);
        }
        // CM estimates are upper bounds on counts, so heavily-outbound
        // items still rank high; the most popular deltoid should appear in
        // the CM top-32.
        let top = cm.top_k_by_ratio(t.items(), 32);
        let heaviest_deltoid = g.deltoids()[0]; // lowest rank = most popular
        assert!(
            top.contains(&heaviest_deltoid),
            "heaviest deltoid missing from CM top-32"
        );
    }

    #[test]
    fn awm_detector_recalls_planted_deltoids() {
        let mut g = gen();
        let mut det = DeltoidDetector::new(AwmSketch::new(
            AwmSketchConfig::new(64, 512).lambda(1e-6).seed(4),
        ));
        let mut t = ExactRatioTable::new();
        for e in g.take(200_000) {
            det.observe(e);
            t.observe(e);
        }
        let relevant = t.items_above(2.0f64.ln(), 20);
        let retrieved = det.top_outbound(64);
        let retrieved_set: std::collections::HashSet<u32> = retrieved.into_iter().collect();
        let hits = relevant
            .iter()
            .filter(|a| retrieved_set.contains(a))
            .count();
        let recall = hits as f64 / relevant.len().max(1) as f64;
        assert!(
            recall > 0.5,
            "recall {recall:.2} over {} relevant items",
            relevant.len()
        );
    }

    #[test]
    fn detector_counts_events() {
        let mut det = DeltoidDetector::new(AwmSketch::new(AwmSketchConfig::new(4, 32)));
        det.observe(PacketEvent {
            addr: 1,
            side: StreamSide::Outbound,
        });
        det.observe(PacketEvent {
            addr: 2,
            side: StreamSide::Inbound,
        });
        assert_eq!(det.events_seen(), 2);
    }

    #[test]
    fn paired_cm_budget_sizing() {
        let cm = PairedCountMin::with_budget_bytes(32 * 1024, 0);
        assert!(cm.memory_bytes() <= 32 * 1024);
    }
}
