//! The paper's §8 applications, each framing a stream-processing task as
//! memory-budgeted classification:
//!
//! * [`explanation`] — §8.1 streaming explanation: which attributes are
//!   indicative of outlier data points? (Classifier weights vs the
//!   MacroBase-style heavy-hitters heuristic.)
//! * [`deltoids`] — §8.2 network monitoring: which items differ most in
//!   *relative* frequency between two concurrent streams? (Classifier
//!   weights vs paired Count-Min ratio estimation.)
//! * [`pmi`] — §8.3 streaming pointwise mutual information: which token
//!   pairs are most correlated? (Logistic regression on true-vs-synthetic
//!   bigrams converges to the PMI, per Levy & Goldberg 2014.)

#![warn(missing_docs)]

pub mod deltoids;
pub mod explanation;
pub mod pmi;

pub use deltoids::{DeltoidDetector, ExactRatioTable, PairedCountMin};
pub use explanation::ExactRiskTable;
pub use pmi::{ExactPmi, PmiEstimator, PmiEstimatorConfig};
