//! Streaming pointwise mutual information (§8.3).
//!
//! The classification framing (after word2vec/SGNS; PMI connection by Levy
//! & Goldberg 2014): for each co-occurring token pair `(u, v)` within a
//! sliding window, emit a *positive* example; for each positive, emit
//! `neg_samples` *negative* examples `(u, v')` with `v'` drawn from (a
//! reservoir approximation of) the unigram distribution. A logistic model
//! over 1-sparse "pair-id" vectors then converges to
//! `w(u,v) = log(p(u,v) / (κ·p(u)p(v))) = PMI(u,v) − log κ`, where
//! `κ` is the negative-to-positive ratio; [`PmiEstimator::estimate_pmi`]
//! adds the `log κ` correction back.
//!
//! Pair identifiers are MurmurHash3 hashes of the token pair, exactly as
//! the reference implementation hashes strings (§8.3), and the estimator
//! is an AWM-Sketch with depth 1 and a heap of the top pairs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wmsketch_core::{
    AwmSketch, AwmSketchConfig, OnlineLearner, TopKRecovery, WeightEntry, WeightEstimator,
};
use wmsketch_datagen::Reservoir;
use wmsketch_hashing::{murmur3_32, FastHashMap};
use wmsketch_learn::{LearningRate, SparseVector};

/// Hashes a token pair to a 32-bit pair identifier (MurmurHash3 over the
/// two token ids, as the paper hashes token strings).
#[must_use]
pub fn pair_id(u: u32, v: u32) -> u32 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&u.to_le_bytes());
    bytes[4..].copy_from_slice(&v.to_le_bytes());
    murmur3_32(&bytes, 0x9747_B28C)
}

/// Configuration for [`PmiEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct PmiEstimatorConfig {
    /// Sliding-window size (paper: 6).
    pub window: usize,
    /// Negative samples per positive (paper: 5).
    pub neg_samples: usize,
    /// Unigram reservoir size (paper: 4000).
    pub reservoir: usize,
    /// AWM sketch width (number of bins).
    pub width: u32,
    /// AWM heap size (paper: 1024).
    pub heap: usize,
    /// `ℓ2` regularization λ.
    pub lambda: f64,
    /// Learning-rate schedule (paper default `0.1/√t`). Note that both
    /// the convergence of `w → PMI − log κ` and the ℓ2-driven eviction of
    /// erroneously-promoted pairs (paper §9) are governed by `λ·Ση_t`; at
    /// laptop-scale corpora (≲10⁶ tokens vs the paper's 77.7M) retrieval
    /// quality therefore favours corpora/width/λ combinations with
    /// meaningful decay — see `EXPERIMENTS.md`.
    pub learning_rate: LearningRate,
    /// RNG / hash seed.
    pub seed: u64,
}

impl Default for PmiEstimatorConfig {
    fn default() -> Self {
        Self {
            window: 6,
            neg_samples: 5,
            reservoir: 4000,
            width: 1 << 16,
            heap: 1024,
            lambda: 1e-7,
            learning_rate: LearningRate::InvSqrt(0.1),
            seed: 0,
        }
    }
}

/// Streaming PMI estimator (see module docs).
#[derive(Debug)]
pub struct PmiEstimator {
    cfg: PmiEstimatorConfig,
    model: AwmSketch,
    unigrams: Reservoir<u32>,
    window: std::collections::VecDeque<u32>,
    rng: StdRng,
    pairs_seen: u64,
}

impl PmiEstimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new(cfg: PmiEstimatorConfig) -> Self {
        let model = AwmSketch::new(
            AwmSketchConfig::new(cfg.heap, cfg.width)
                .lambda(cfg.lambda)
                .learning_rate(cfg.learning_rate)
                .seed(cfg.seed),
        );
        Self {
            cfg,
            model,
            unigrams: Reservoir::new(cfg.reservoir),
            window: std::collections::VecDeque::with_capacity(cfg.window),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x9A11),
            pairs_seen: 0,
        }
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> &PmiEstimatorConfig {
        &self.cfg
    }

    /// Number of positive pairs consumed.
    #[must_use]
    pub fn pairs_seen(&self) -> u64 {
        self.pairs_seen
    }

    /// Consumes one token: forms positive pairs with the current window,
    /// generates negatives from the unigram reservoir, and updates the
    /// model.
    pub fn observe_token(&mut self, token: u32) {
        // Positive pairs (u, token) for every u in the window.
        let window: Vec<u32> = self.window.iter().copied().collect();
        for u in window {
            self.observe_pair(u, token);
        }
        self.unigrams.offer(token, &mut self.rng);
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(token);
    }

    /// Consumes one explicit co-occurring pair.
    pub fn observe_pair(&mut self, u: u32, v: u32) {
        self.pairs_seen += 1;
        let pos = SparseVector::one_hot(pair_id(u, v), 1.0);
        self.model.update(&pos, 1);
        for _ in 0..self.cfg.neg_samples {
            let Some(&v_neg) = self.unigrams.sample(&mut self.rng) else {
                continue;
            };
            let neg = SparseVector::one_hot(pair_id(u, v_neg), 1.0);
            self.model.update(&neg, -1);
        }
    }

    /// The raw logistic weight of a pair (converges to PMI − log κ).
    #[must_use]
    pub fn weight(&self, u: u32, v: u32) -> f64 {
        self.model.estimate(pair_id(u, v))
    }

    /// The PMI estimate: weight + log(neg_samples).
    #[must_use]
    pub fn estimate_pmi(&self, u: u32, v: u32) -> f64 {
        self.weight(u, v) + (self.cfg.neg_samples as f64).ln()
    }

    /// The top-`k` pair ids by weight (most positively-associated pairs).
    /// Pair ids map back to token pairs via the caller's bookkeeping (e.g.
    /// [`ExactPmi::resolve`]).
    #[must_use]
    pub fn top_pair_ids(&self, k: usize) -> Vec<WeightEntry> {
        // Scan the whole active set: strongly *negative* pairs (frequent
        // tokens paired with sampled negatives) can dominate the top-|w|
        // entries, so a small pool could miss every positive pair.
        let mut entries: Vec<WeightEntry> = self
            .model
            .recover_top_k(usize::MAX)
            .into_iter()
            .filter(|e| e.weight > 0.0)
            .collect();
        entries.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("NaN weight"));
        entries.truncate(k);
        entries
    }

    /// Memory cost of the sketch state in bytes (paper cost model;
    /// excludes the unigram reservoir, which the paper accounts
    /// separately).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

/// Exact windowed unigram/bigram counter: ground-truth PMI and the pair-id
/// reverse map for evaluation.
#[derive(Debug, Default)]
pub struct ExactPmi {
    window_size: usize,
    window: std::collections::VecDeque<u32>,
    unigrams: FastHashMap<u32, u64>,
    bigrams: FastHashMap<(u32, u32), u64>,
    /// pair-id → token pair, for resolving sketch retrievals.
    reverse: FastHashMap<u32, (u32, u32)>,
    tokens: u64,
    pairs: u64,
}

impl ExactPmi {
    /// Creates a counter with the given sliding-window size.
    #[must_use]
    pub fn new(window_size: usize) -> Self {
        Self {
            window_size,
            ..Self::default()
        }
    }

    /// Consumes one token.
    pub fn observe_token(&mut self, token: u32) {
        self.tokens += 1;
        *self.unigrams.entry(token).or_insert(0) += 1;
        let window: Vec<u32> = self.window.iter().copied().collect();
        for u in window {
            self.pairs += 1;
            *self.bigrams.entry((u, token)).or_insert(0) += 1;
            self.reverse.entry(pair_id(u, token)).or_insert((u, token));
        }
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(token);
    }

    /// Tokens seen.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Distinct bigrams seen.
    #[must_use]
    pub fn distinct_bigrams(&self) -> usize {
        self.bigrams.len()
    }

    /// Resolves a pair id back to its token pair (first-seen wins on hash
    /// collision).
    #[must_use]
    pub fn resolve(&self, id: u32) -> Option<(u32, u32)> {
        self.reverse.get(&id).copied()
    }

    /// Occurrence count of pair `(u, v)`.
    #[must_use]
    pub fn pair_count(&self, u: u32, v: u32) -> u64 {
        self.bigrams.get(&(u, v)).copied().unwrap_or(0)
    }

    /// The exact PMI `log(p(u,v) / (p(u)p(v)))` over the windowed pair
    /// distribution; `None` if any count is zero.
    #[must_use]
    pub fn pmi(&self, u: u32, v: u32) -> Option<f64> {
        let c_uv = self.bigrams.get(&(u, v)).copied()?;
        let c_u = self.unigrams.get(&u).copied()?;
        let c_v = self.unigrams.get(&v).copied()?;
        if c_uv == 0 || c_u == 0 || c_v == 0 || self.pairs == 0 || self.tokens == 0 {
            return None;
        }
        let p_uv = c_uv as f64 / self.pairs as f64;
        let p_u = c_u as f64 / self.tokens as f64;
        let p_v = c_v as f64 / self.tokens as f64;
        Some((p_uv / (p_u * p_v)).ln())
    }

    /// Relative frequency of the pair among all pairs.
    #[must_use]
    pub fn pair_frequency(&self, u: u32, v: u32) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.pair_count(u, v) as f64 / self.pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsketch_datagen::{CorpusConfig, CorpusGen};

    fn corpus() -> CorpusGen {
        CorpusGen::new(CorpusConfig {
            vocab: 2048,
            zipf_s: 1.05,
            n_collocations: 4,
            collocation_rate: 0.03,
            collocation_base: 64,
            seed: 3,
        })
    }

    #[test]
    fn pair_id_is_order_sensitive_and_deterministic() {
        assert_eq!(pair_id(1, 2), pair_id(1, 2));
        assert_ne!(pair_id(1, 2), pair_id(2, 1));
    }

    #[test]
    fn exact_pmi_window_pairs() {
        let mut e = ExactPmi::new(2);
        for t in [1u32, 2, 3, 1, 2] {
            e.observe_token(t);
        }
        // Windows of 2: pairs (1,2),(1,3),(2,3),(2,1),(3,1),(3,2),(1,2)...
        assert!(e.pair_count(1, 2) >= 2);
        assert_eq!(e.tokens(), 5);
        assert!(e.distinct_bigrams() >= 4);
    }

    #[test]
    fn planted_collocations_get_high_estimated_pmi() {
        let mut g = corpus();
        let mut est = PmiEstimator::new(PmiEstimatorConfig {
            width: 1 << 14,
            heap: 256,
            window: 4,
            lambda: 1e-7,
            ..PmiEstimatorConfig::default()
        });
        let mut exact = ExactPmi::new(4);
        for _ in 0..120_000 {
            let t = g.next_token();
            est.observe_token(t);
            exact.observe_token(t);
        }
        let (u, v) = g.collocations()[0];
        let est_pmi = est.estimate_pmi(u, v);
        let true_pmi = exact.pmi(u, v).expect("planted pair must occur");
        assert!(true_pmi > 2.0, "true PMI {true_pmi:.2}");
        assert!(
            est_pmi > 1.0,
            "estimated PMI {est_pmi:.2} (true {true_pmi:.2})"
        );
        // A frequent pair should score clearly lower (the gap narrows at
        // this stream length because the 1/√t rate slows convergence).
        let est_freq = est.estimate_pmi(0, 1);
        assert!(
            est_freq < est_pmi - 0.3,
            "frequent-pair PMI {est_freq:.2} vs planted {est_pmi:.2}"
        );
    }

    #[test]
    fn top_pairs_resolve_to_planted_collocations() {
        let mut g = corpus();
        let mut est = PmiEstimator::new(PmiEstimatorConfig {
            width: 1 << 14,
            heap: 256,
            window: 4,
            ..PmiEstimatorConfig::default()
        });
        let mut exact = ExactPmi::new(4);
        for _ in 0..120_000 {
            let t = g.next_token();
            est.observe_token(t);
            exact.observe_token(t);
        }
        let top = est.top_pair_ids(20);
        assert!(!top.is_empty());
        let resolved: Vec<(u32, u32)> = top
            .iter()
            .filter_map(|e| exact.resolve(e.feature))
            .collect();
        let planted_hits = resolved
            .iter()
            .filter(|&&(u, v)| g.is_collocation(u, v))
            .count();
        assert!(
            planted_hits >= 2,
            "only {planted_hits} planted collocations in top 20: {resolved:?}"
        );
    }

    #[test]
    fn reservoir_fills_from_stream() {
        let mut est = PmiEstimator::new(PmiEstimatorConfig {
            reservoir: 16,
            ..PmiEstimatorConfig::default()
        });
        for t in 0..100u32 {
            est.observe_token(t);
        }
        assert!(est.pairs_seen() > 0);
    }
}
