//! Median selection for Count-Sketch estimators.

use wmsketch_hashing::RowHashers;

/// Returns the median of `values`, reordering the slice in place.
///
/// For an even number of elements this returns the *lower* median, matching
/// the convention of the reference WM-Sketch implementation (a single
/// order-statistic rather than an average keeps the estimator equal to one
/// of the actual per-row estimates).
///
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn median_inplace(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mid = (values.len() - 1) / 2;
    let (_, m, _) =
        values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("NaN in median input"));
    *m
}

/// Row values are recovered into a stack buffer up to this depth; deeper
/// sketches spill to a heap allocation. (The fused update pipeline avoids
/// even that via `CoordPlan`'s plan-owned scratch.)
const STACK_DEPTH: usize = 64;

/// The Count-Sketch point estimate of `key` over a row-major cell array:
/// `median_j(scale · σ_j(key) · cells[j·width + h_j(key)])`.
///
/// This is the one shared implementation of the estimator's recovery step,
/// used by `CountSketch::estimate` (`scale = 1`) and the WM-/AWM-Sketch
/// `query_stored` paths (`scale = √s`, undoing the `R = A/√s` projection
/// scaling).
#[must_use]
pub fn signed_median_estimate(hashers: &RowHashers, cells: &[f64], key: u64, scale: f64) -> f64 {
    let depth = hashers.depth() as usize;
    let mut spill;
    let mut buf = [0.0f64; STACK_DEPTH];
    let vals: &mut [f64] = if depth <= STACK_DEPTH {
        &mut buf[..depth]
    } else {
        spill = vec![0.0; depth];
        &mut spill
    };
    let mut j = 0;
    hashers.for_each_coord(key, |offset, sign| {
        vals[j] = scale * sign * cells[offset];
        j += 1;
    });
    median_inplace(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsketch_hashing::HashFamilyKind;

    #[test]
    fn signed_median_estimate_matches_manual_recovery() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            // Depth 80 exercises the spill path too.
            for depth in [1u32, 5, 80] {
                let hashers = RowHashers::new(kind, depth, 32, 9);
                let cells: Vec<f64> = (0..depth as usize * 32).map(|i| (i as f64).sin()).collect();
                for key in 0..200u64 {
                    for scale in [1.0, (f64::from(depth)).sqrt()] {
                        let expect = {
                            let mut vals: Vec<f64> = hashers
                                .bucket_signs(key)
                                .map(|(j, bs)| scale * bs.sign * cells[j * 32 + bs.bucket as usize])
                                .collect();
                            median_inplace(&mut vals)
                        };
                        let got = signed_median_estimate(&hashers, &cells, key, scale);
                        assert_eq!(got, expect, "kind {kind:?} depth {depth} key {key}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(median_inplace(&mut []), 0.0);
    }

    #[test]
    fn singleton() {
        assert_eq!(median_inplace(&mut [3.5]), 3.5);
    }

    #[test]
    fn odd_length() {
        assert_eq!(median_inplace(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_inplace(&mut [9.0, -2.0, 7.0, 4.0, 0.0]), 4.0);
    }

    #[test]
    fn even_length_takes_lower_median() {
        assert_eq!(median_inplace(&mut [4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median_inplace(&mut [10.0, 20.0]), 10.0);
    }

    #[test]
    fn robust_to_one_outlier_in_three() {
        assert_eq!(median_inplace(&mut [2.0, 1e12, 2.0]), 2.0);
    }

    #[test]
    fn duplicates() {
        assert_eq!(median_inplace(&mut [7.0, 7.0, 7.0, 7.0]), 7.0);
    }
}
