//! Median selection for Count-Sketch estimators.

/// Returns the median of `values`, reordering the slice in place.
///
/// For an even number of elements this returns the *lower* median, matching
/// the convention of the reference WM-Sketch implementation (a single
/// order-statistic rather than an average keeps the estimator equal to one
/// of the actual per-row estimates).
///
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn median_inplace(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mid = (values.len() - 1) / 2;
    let (_, m, _) = values
        .select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("NaN in median input"));
    *m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(median_inplace(&mut []), 0.0);
    }

    #[test]
    fn singleton() {
        assert_eq!(median_inplace(&mut [3.5]), 3.5);
    }

    #[test]
    fn odd_length() {
        assert_eq!(median_inplace(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_inplace(&mut [9.0, -2.0, 7.0, 4.0, 0.0]), 4.0);
    }

    #[test]
    fn even_length_takes_lower_median() {
        assert_eq!(median_inplace(&mut [4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median_inplace(&mut [10.0, 20.0]), 10.0);
    }

    #[test]
    fn robust_to_one_outlier_in_three() {
        assert_eq!(median_inplace(&mut [2.0, 1e12, 2.0]), 2.0);
    }

    #[test]
    fn duplicates() {
        assert_eq!(median_inplace(&mut [7.0, 7.0, 7.0, 7.0]), 7.0);
    }
}
