//! Median selection for Count-Sketch estimators.
//!
//! Two implementations share the lower-median convention:
//!
//! * **Sorting-network selection** for depths ≤ [`NETWORK_MAX_DEPTH`]:
//!   Batcher's odd-even merge network, monomorphized per length so the
//!   compare-exchange schedule is fully unrolled and data-independent
//!   (each compare-exchange compiles to a pair of conditional moves — no
//!   branches on cell values, so no branch mispredictions on the heap
//!   maintenance hot path).
//! * **Introselect** (`select_nth_unstable_by`) above that, where the
//!   `O(n)` expected cost wins over a full `O(n log² n)` network.
//!
//! [`median_inplace`] dispatches between them by length; golden tests pin
//! the two paths to identical results across odd and even depths.

use wmsketch_hashing::{simd, RowHashers};

/// Largest slice length routed through the sorting network; deeper inputs
/// fall back to introselect. 16 covers every per-row median the paper's
/// configurations take on the update path (Table 2 depths are ≤ 14).
pub const NETWORK_MAX_DEPTH: usize = 16;

/// One compare-exchange: orders `v[i] ≤ v[j]` without a data-dependent
/// branch (the two conditional selects compile to `cmov`/`minsd`-style
/// code).
///
/// Uses a single `<` comparison rather than `f64::min`/`max` so the
/// element *multiset* is preserved exactly — `min`/`max` may collapse
/// `-0.0`/`+0.0` pairs, and sign-flipped zero cells are common in sparse
/// sketches. NaNs compare false and are left in place (the estimator's
/// cells are never NaN; `median_select_inplace` enforces that by panic).
#[inline(always)]
fn cswap(v: &mut [f64], i: usize, j: usize) {
    let (a, b) = (v[i], v[j]);
    let swap = b < a;
    v[i] = if swap { b } else { a };
    v[j] = if swap { a } else { b };
}

/// Batcher's odd-even merge sorting network for a fixed length `N`,
/// correct for arbitrary (not just power-of-two) `N`. The loop bounds
/// depend only on `N`, so with `N` a const generic the whole schedule
/// unrolls at compile time.
#[inline]
fn oddeven_network<const N: usize>(v: &mut [f64]) {
    debug_assert_eq!(v.len(), N);
    let mut p = 1;
    while p < N {
        let mut k = p;
        loop {
            let mut j = k % p;
            while j + k < N {
                let mut i = 0;
                while i < k && i + j + k < N {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        cswap(v, i + j, i + j + k);
                    }
                    i += 1;
                }
                j += 2 * k;
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }
        p *= 2;
    }
}

/// Sorts `values` (of length ≤ [`NETWORK_MAX_DEPTH`]) with the
/// monomorphized network for its exact length and returns the lower
/// median, canonicalized per [`median_inplace`].
///
/// # Panics
/// Panics if `values` is empty or longer than [`NETWORK_MAX_DEPTH`].
#[must_use]
pub fn median_network_inplace(values: &mut [f64]) -> f64 {
    match values.len() {
        1 => {}
        2 => oddeven_network::<2>(values),
        3 => oddeven_network::<3>(values),
        4 => oddeven_network::<4>(values),
        5 => oddeven_network::<5>(values),
        6 => oddeven_network::<6>(values),
        7 => oddeven_network::<7>(values),
        8 => oddeven_network::<8>(values),
        9 => oddeven_network::<9>(values),
        10 => oddeven_network::<10>(values),
        11 => oddeven_network::<11>(values),
        12 => oddeven_network::<12>(values),
        13 => oddeven_network::<13>(values),
        14 => oddeven_network::<14>(values),
        15 => oddeven_network::<15>(values),
        16 => oddeven_network::<16>(values),
        n => panic!("sorting-network median supports 1..={NETWORK_MAX_DEPTH} values, got {n}"),
    }
    // + 0.0 canonicalizes -0.0 to +0.0 and is exact for every other value;
    // see median_inplace.
    values[(values.len() - 1) / 2] + 0.0
}

/// Returns the lower median of `values` by introselect, reordering the
/// slice in place, canonicalized per [`median_inplace`]. This is the
/// fallback path for depths > [`NETWORK_MAX_DEPTH`] and the golden
/// reference the network path is tested against.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
/// Panics if `values` contains NaN.
#[must_use]
pub fn median_select_inplace(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mid = (values.len() - 1) / 2;
    let (_, m, _) =
        values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("NaN in median input"));
    *m + 0.0
}

/// Returns the median of `values`, reordering the slice in place.
///
/// For an even number of elements this returns the *lower* median, matching
/// the convention of the reference WM-Sketch implementation (a single
/// order-statistic rather than an average keeps the estimator equal to one
/// of the actual per-row estimates).
///
/// Lengths ≤ [`NETWORK_MAX_DEPTH`] run through a branchless sorting
/// network; longer inputs use introselect. Both paths return bit-identical
/// values: a zero median is canonicalized to `+0.0` (via `+ 0.0`, exact
/// for every other value), because the two selection paths may otherwise
/// land a `-0.0` vs a `+0.0` from a mixed-zero tie — numerically equal but
/// with different bit patterns, which would leak through the snapshot
/// codec's bit-identity guarantee.
///
/// Returns `0.0` for an empty slice.
///
/// NaN input is unsupported (sketch cells are never NaN): debug builds
/// assert, release behavior depends on length — the introselect path
/// panics while the network path, whose compare-exchanges are branchless,
/// returns an unspecified element.
#[must_use]
#[inline]
pub fn median_inplace(values: &mut [f64]) -> f64 {
    debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in median input");
    match values.len() {
        0 => 0.0,
        n if n <= NETWORK_MAX_DEPTH => median_network_inplace(values),
        _ => median_select_inplace(values),
    }
}

/// Row values are recovered into a stack buffer up to this depth; deeper
/// sketches spill to a heap allocation. (The fused update pipeline avoids
/// even that via `CoordPlan`'s plan-owned scratch.)
const STACK_DEPTH: usize = 64;

/// The Count-Sketch point estimate of `key` over a row-major cell array:
/// `median_j(scale · σ_j(key) · cells[j·width + h_j(key)])`.
///
/// This is the one shared implementation of the estimator's recovery step,
/// used by `CountSketch::estimate` (`scale = 1`) and the WM-/AWM-Sketch
/// `query_stored` paths (`scale = √s`, undoing the `R = A/√s` projection
/// scaling).
///
/// Depth 1 — the paper's best AWM shape — skips the buffer and median
/// machinery entirely: a 1-row "median" is just the sign-corrected cell,
/// canonicalized exactly as [`median_inplace`] would (`+ 0.0`). Deeper
/// sketches hash the key's coordinates into stack buffers and run the
/// value fill through the runtime-dispatched
/// [`wmsketch_hashing::simd::gather_scaled`] kernel; both paths are
/// bit-identical to the pre-kernel interleaved loop.
#[must_use]
pub fn signed_median_estimate(hashers: &RowHashers, cells: &[f64], key: u64, scale: f64) -> f64 {
    let depth = hashers.depth() as usize;
    if depth == 1 {
        let bs = hashers.bucket_sign(0, key);
        // + 0.0 canonicalizes -0.0 to +0.0, matching median_inplace.
        return scale * bs.sign * cells[bs.bucket as usize] + 0.0;
    }
    let mut off_spill;
    let mut sg_spill;
    let mut val_spill;
    let mut off_buf = [0u32; STACK_DEPTH];
    let mut sg_buf = [0.0f64; STACK_DEPTH];
    let mut val_buf = [0.0f64; STACK_DEPTH];
    let (offsets, signs, vals): (&mut [u32], &mut [f64], &mut [f64]) = if depth <= STACK_DEPTH {
        (
            &mut off_buf[..depth],
            &mut sg_buf[..depth],
            &mut val_buf[..depth],
        )
    } else {
        off_spill = vec![0u32; depth];
        sg_spill = vec![0.0; depth];
        val_spill = vec![0.0; depth];
        (&mut off_spill, &mut sg_spill, &mut val_spill)
    };
    let mut j = 0;
    hashers.for_each_coord(key, |offset, sign| {
        // The cast is exact: RowHashers::new asserts depth × width fits
        // the u32 offset space, and offset < depth × width.
        offsets[j] = offset as u32;
        signs[j] = sign;
        j += 1;
    });
    simd::gather_scaled(cells, offsets, signs, scale, vals);
    median_inplace(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsketch_hashing::HashFamilyKind;

    #[test]
    fn signed_median_estimate_matches_manual_recovery() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            // Depth 80 exercises the spill path too.
            for depth in [1u32, 5, 80] {
                let hashers = RowHashers::new(kind, depth, 32, 9);
                let cells: Vec<f64> = (0..depth as usize * 32).map(|i| (i as f64).sin()).collect();
                for key in 0..200u64 {
                    for scale in [1.0, (f64::from(depth)).sqrt()] {
                        let expect = {
                            let mut vals: Vec<f64> = hashers
                                .bucket_signs(key)
                                .map(|(j, bs)| scale * bs.sign * cells[j * 32 + bs.bucket as usize])
                                .collect();
                            median_inplace(&mut vals)
                        };
                        let got = signed_median_estimate(&hashers, &cells, key, scale);
                        assert_eq!(got, expect, "kind {kind:?} depth {depth} key {key}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(median_inplace(&mut []), 0.0);
    }

    #[test]
    fn singleton() {
        assert_eq!(median_inplace(&mut [3.5]), 3.5);
    }

    #[test]
    fn odd_length() {
        assert_eq!(median_inplace(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_inplace(&mut [9.0, -2.0, 7.0, 4.0, 0.0]), 4.0);
    }

    #[test]
    fn even_length_takes_lower_median() {
        assert_eq!(median_inplace(&mut [4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median_inplace(&mut [10.0, 20.0]), 10.0);
    }

    #[test]
    fn robust_to_one_outlier_in_three() {
        assert_eq!(median_inplace(&mut [2.0, 1e12, 2.0]), 2.0);
    }

    #[test]
    fn duplicates() {
        assert_eq!(median_inplace(&mut [7.0, 7.0, 7.0, 7.0]), 7.0);
    }

    /// The 0–1 principle: a comparison network that sorts every boolean
    /// sequence sorts every sequence. Exhaustively verifying all `2^n`
    /// boolean inputs for every network length proves each monomorphized
    /// network correct, not just spot-checked.
    #[test]
    fn network_sorts_all_boolean_inputs_zero_one_principle() {
        for n in 1..=NETWORK_MAX_DEPTH {
            for mask in 0u32..(1 << n) {
                let mut v: Vec<f64> = (0..n)
                    .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect();
                let _ = median_network_inplace(&mut v);
                let ones = mask.count_ones() as usize;
                let sorted: Vec<f64> = (0..n)
                    .map(|i| if i < n - ones { 0.0 } else { 1.0 })
                    .collect();
                assert_eq!(v, sorted, "n={n} mask={mask:b}");
            }
        }
    }

    /// Golden equality of the two median paths across odd and even
    /// lengths, adversarial value mixes (ties, signed zeros, infinities),
    /// and a deterministic pseudo-random sweep.
    #[test]
    fn network_matches_select_across_depths() {
        use wmsketch_hashing::splitmix64;
        for n in 1..=NETWORK_MAX_DEPTH {
            for case in 0..200u64 {
                let mut vals: Vec<f64> = (0..n)
                    .map(|i| {
                        let h = splitmix64(case * 131 + i as u64);
                        match h % 8 {
                            0 => 0.0,
                            1 => -0.0,
                            2 => f64::INFINITY,
                            3 => f64::NEG_INFINITY,
                            4 | 5 => f64::from((h % 5) as u32) - 2.0, // ties
                            _ => (h as f64 / u64::MAX as f64) * 2.0 - 1.0,
                        }
                    })
                    .collect();
                let mut by_select = vals.clone();
                let a = median_network_inplace(&mut vals);
                let b = median_select_inplace(&mut by_select);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "n={n} case={case}: network {a} vs select {b}"
                );
            }
        }
    }

    /// A zero median is always +0.0 on both paths, no matter which signed
    /// zero the selection lands on — the canonicalization that makes the
    /// two paths bit-identical.
    #[test]
    fn zero_median_is_canonical_positive_zero() {
        assert_eq!(median_network_inplace(&mut [-0.0]).to_bits(), 0);
        assert_eq!(median_select_inplace(&mut [-0.0]).to_bits(), 0);
        assert_eq!(median_network_inplace(&mut [0.0, -0.0, -0.0]).to_bits(), 0);
        assert_eq!(median_select_inplace(&mut [0.0, -0.0, -0.0]).to_bits(), 0);
        let mut long: Vec<f64> = vec![-0.0; NETWORK_MAX_DEPTH + 5];
        assert_eq!(median_inplace(&mut long).to_bits(), 0);
        // Nonzero medians are untouched bit for bit.
        assert_eq!(
            median_network_inplace(&mut [-1.5, -1.5, -1.5]).to_bits(),
            (-1.5f64).to_bits()
        );
    }

    #[test]
    fn network_preserves_signed_zero_multiset() {
        let mut v = [0.0, -0.0, -0.0, 0.0, -0.0];
        let _ = median_network_inplace(&mut v);
        let negs = v.iter().filter(|x| x.is_sign_negative()).count();
        assert_eq!(negs, 3, "signed-zero multiset changed: {v:?}");
    }

    #[test]
    fn dispatch_is_seamless_across_the_network_boundary() {
        use wmsketch_hashing::splitmix64;
        for n in [
            NETWORK_MAX_DEPTH - 1,
            NETWORK_MAX_DEPTH,
            NETWORK_MAX_DEPTH + 1,
            63,
            64,
            65,
        ] {
            let mut vals: Vec<f64> = (0..n)
                .map(|i| (splitmix64(i as u64 + 9) as f64 / u64::MAX as f64) - 0.5)
                .collect();
            let mut reference = vals.clone();
            let got = median_inplace(&mut vals);
            let want = median_select_inplace(&mut reference);
            assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
        }
    }
}
