//! The Count-Min sketch of Cormode & Muthukrishnan (2005).
//!
//! Non-negative counters; each key hashes to one cell per row (no signs) and
//! the estimate is the *minimum* over rows, giving a one-sided guarantee:
//! `v_i ≤ v̂_i ≤ v_i + ε‖v‖₁` with width `Θ(1/ε)` and depth `Θ(log(d/δ))`.
//!
//! Used by the frequent-features baseline classifier and, in pairs, by the
//! relative-deltoid baseline of Figure 10 (as in Cormode–Muthukrishnan's
//! "What's new" paper).

use wmsketch_hashing::codec::{CodecError, Reader, SnapshotCodec, Writer, KIND_COUNT_MIN};
use wmsketch_hashing::{HashFamilyKind, RowHashers};

use crate::countsketch::{put_cells, take_cells, SECTION_HEADER};

/// Update policy for the Count-Min sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMinUpdate {
    /// Classic: add the delta to every row's cell.
    #[default]
    Classic,
    /// Conservative update (Estan–Varghese): only raise cells to the new
    /// lower bound, reducing over-estimation for skewed streams. An
    /// extension over the paper's baseline, used in ablations.
    Conservative,
}

/// A Count-Min sketch over 64-bit keys with `f64` counters.
#[derive(Clone)]
pub struct CountMinSketch {
    hashers: RowHashers,
    table: Vec<f64>,
    width: usize,
    depth: usize,
    policy: CountMinUpdate,
    total: f64,
    seed: u64,
}

impl std::fmt::Debug for CountMinSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountMinSketch")
            .field("depth", &self.depth)
            .field("width", &self.width)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl CountMinSketch {
    /// Creates a `depth × width` Count-Min sketch with the classic update
    /// policy and tabulation hashing.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    #[must_use]
    pub fn new(depth: u32, width: u32, seed: u64) -> Self {
        Self::with_policy(CountMinUpdate::Classic, depth, width, seed)
    }

    /// Creates a Count-Min sketch with an explicit update policy.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    #[must_use]
    pub fn with_policy(policy: CountMinUpdate, depth: u32, width: u32, seed: u64) -> Self {
        let hashers = RowHashers::new(HashFamilyKind::Tabulation, depth, width, seed);
        Self {
            hashers,
            table: vec![0.0; depth as usize * width as usize],
            width: width as usize,
            depth: depth as usize,
            policy,
            total: 0.0,
            seed,
        }
    }

    /// Whether `other` shares this sketch's shape, seed, and update policy,
    /// making cell-wise merges meaningful.
    #[must_use]
    pub fn merge_compatible(&self, other: &Self) -> bool {
        self.depth == other.depth
            && self.width == other.width
            && self.seed == other.seed
            && self.policy == other.policy
    }

    /// Adds `other`'s counters (and stream total) into `self`.
    ///
    /// Under the [`CountMinUpdate::Classic`] policy the sketch is a linear
    /// map, so the merge is *exact*: estimates equal those of one sketch
    /// that saw both streams, bit-identically when the deltas sum exactly
    /// (e.g. integral counts). Under [`CountMinUpdate::Conservative`] the
    /// merged cells still dominate each key's true combined count (each
    /// addend does per stream), so the one-sided guarantee
    /// `v̂_i ≥ v_i` survives, but the merged estimate may exceed what a
    /// single conservative sketch of the combined stream would report.
    ///
    /// # Panics
    /// Panics if the sketches are not [`CountMinSketch::merge_compatible`].
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "merging incompatible Count-Min sketches ({}x{} seed {} {:?} vs {}x{} seed {} {:?})",
            self.depth,
            self.width,
            self.seed,
            self.policy,
            other.depth,
            other.width,
            other.seed,
            other.policy
        );
        for (cell, &o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        self.total += other.total;
    }

    /// Consuming variant of [`CountMinSketch::merge_from`].
    ///
    /// # Panics
    /// Panics if the sketches are not [`CountMinSketch::merge_compatible`].
    #[must_use]
    pub fn merge(mut self, other: &Self) -> Self {
        self.merge_from(other);
        self
    }

    /// Sketch depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Row width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total cells.
    #[must_use]
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Sum of all inserted deltas (the stream length `‖v‖₁` for unit
    /// increments).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Adds a non-negative `delta` to `key`'s count.
    ///
    /// # Panics
    /// Panics (debug only) if `delta` is negative — Count-Min's minimum
    /// estimator is only valid for non-negative updates.
    #[inline]
    pub fn update(&mut self, key: u64, delta: f64) {
        debug_assert!(delta >= 0.0, "Count-Min requires non-negative updates");
        self.total += delta;
        match self.policy {
            CountMinUpdate::Classic => {
                let Self { hashers, table, .. } = self;
                hashers.for_each_bucket(key, |offset| table[offset] += delta);
            }
            CountMinUpdate::Conservative => {
                // Raise each cell only to (current estimate + delta).
                let target = self.estimate(key) + delta;
                let Self { hashers, table, .. } = self;
                hashers.for_each_bucket(key, |offset| {
                    let cell = &mut table[offset];
                    if *cell < target {
                        *cell = target;
                    }
                });
            }
        }
    }

    /// Point estimate (minimum over rows); always ≥ the true count.
    ///
    /// Deliberately *not* routed through the `wmsketch_hashing::simd`
    /// kernel layer: an order-sensitive `<` fold cannot use lane-parallel
    /// `minpd` without changing which of two equal (`±0.0`) cells wins,
    /// so staging offsets just to re-fold them would cost a second pass
    /// for zero vectorization — the interleaved hash-and-fold walk is the
    /// fastest correct form.
    #[inline]
    #[must_use]
    pub fn estimate(&self, key: u64) -> f64 {
        let mut min = f64::INFINITY;
        self.hashers.for_each_bucket(key, |offset| {
            let v = self.table[offset];
            if v < min {
                min = v;
            }
        });
        min
    }

    /// Resets the sketch.
    pub fn clear(&mut self) {
        self.table.fill(0.0);
        self.total = 0.0;
    }
}

/// Snapshot layout (after the `WMS1` envelope, kind [`KIND_COUNT_MIN`]):
///
/// ```text
/// section 0x01 HEADER: policy (u8: 0 classic, 1 conservative)
///                    | depth (u32) | width (u32) | seed (u64)
///                    | total (f64)
/// section 0x02 CELLS:  count (u64) | count × f64 (raw bit patterns)
/// ```
///
/// Count-Min rows are always tabulation-hashed (see
/// [`CountMinSketch::with_policy`]), so the header stores only the seed.
impl SnapshotCodec for CountMinSketch {
    const KIND: u8 = KIND_COUNT_MIN;

    fn encode_body(&self, w: &mut Writer) {
        let mark = w.begin_section(SECTION_HEADER);
        w.put_u8(match self.policy {
            CountMinUpdate::Classic => 0,
            CountMinUpdate::Conservative => 1,
        });
        w.put_u32(self.depth as u32);
        w.put_u32(self.width as u32);
        w.put_u64(self.seed);
        w.put_f64(self.total);
        w.end_section(mark);
        put_cells(w, &self.table);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut h = r.expect_section(SECTION_HEADER)?;
        let policy = match h.take_u8()? {
            0 => CountMinUpdate::Classic,
            1 => CountMinUpdate::Conservative,
            _ => return Err(CodecError::Invalid("unknown Count-Min update policy")),
        };
        let depth = h.take_u32()?;
        let width = h.take_u32()?;
        let seed = h.take_u64()?;
        let total = h.take_f64()?;
        h.finish()?;
        if depth == 0 || width == 0 {
            return Err(CodecError::Invalid("sketch depth/width must be nonzero"));
        }
        let expected = (depth as usize)
            .checked_mul(width as usize)
            .ok_or(CodecError::Invalid("depth*width overflows"))?;
        let table = take_cells(r, expected)?;
        let mut cm = Self::with_policy(policy, depth, width, seed);
        cm.table = table;
        cm.total = total;
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_single_key() {
        let mut cm = CountMinSketch::new(4, 32, 1);
        cm.update(9, 3.0);
        cm.update(9, 4.0);
        assert_eq!(cm.estimate(9), 7.0);
        assert_eq!(cm.total(), 7.0);
    }

    #[test]
    fn estimates_never_underestimate() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth = vec![0.0f64; 500];
        let mut cm = CountMinSketch::new(4, 64, 2);
        for _ in 0..10_000 {
            let k = rng.random_range(0..500u64);
            truth[k as usize] += 1.0;
            cm.update(k, 1.0);
        }
        for k in 0..500u64 {
            assert!(cm.estimate(k) >= truth[k as usize] - 1e-9);
        }
    }

    #[test]
    fn l1_error_guarantee_holds_mostly() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 2000u64;
        let width = 512u32;
        let mut truth = vec![0.0f64; n as usize];
        let mut cm = CountMinSketch::new(4, width, 7);
        for _ in 0..50_000 {
            let k = rng.random_range(0..n);
            truth[k as usize] += 1.0;
            cm.update(k, 1.0);
        }
        // ε = e / width; error ≤ ε‖v‖₁ with prob 1 − e^-depth per key.
        let eps = std::f64::consts::E / f64::from(width);
        let bound = eps * cm.total();
        let failures = (0..n)
            .filter(|&k| cm.estimate(k) - truth[k as usize] > bound)
            .count();
        assert!(failures <= 40, "failures {failures} bound {bound:.1}");
    }

    #[test]
    fn conservative_update_never_underestimates_and_dominates_classic() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 300u64;
        let mut truth = vec![0.0f64; n as usize];
        let mut classic = CountMinSketch::new(3, 32, 9);
        let mut cons = CountMinSketch::with_policy(CountMinUpdate::Conservative, 3, 32, 9);
        for _ in 0..20_000 {
            let k = rng.random_range(0..n);
            truth[k as usize] += 1.0;
            classic.update(k, 1.0);
            cons.update(k, 1.0);
        }
        let mut total_classic_err = 0.0;
        let mut total_cons_err = 0.0;
        for k in 0..n {
            let t = truth[k as usize];
            assert!(cons.estimate(k) >= t - 1e-9, "conservative underestimated");
            total_classic_err += classic.estimate(k) - t;
            total_cons_err += cons.estimate(k) - t;
        }
        assert!(
            total_cons_err <= total_classic_err + 1e-9,
            "conservative {total_cons_err} vs classic {total_classic_err}"
        );
    }

    #[test]
    fn merge_equals_unsplit_for_classic_policy() {
        let mut whole = CountMinSketch::new(4, 32, 6);
        let mut left = CountMinSketch::new(4, 32, 6);
        let mut right = CountMinSketch::new(4, 32, 6);
        for k in 0..200u64 {
            let d = f64::from((k % 5) as u32);
            whole.update(k, d);
            if k % 2 == 0 {
                left.update(k, d);
            } else {
                right.update(k, d);
            }
        }
        left.merge_from(&right);
        assert_eq!(left.total(), whole.total());
        for k in 0..200u64 {
            assert_eq!(left.estimate(k), whole.estimate(k));
        }
    }

    #[test]
    fn merged_conservative_sketches_never_underestimate() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let mut truth = vec![0.0f64; 100];
        let mut a = CountMinSketch::with_policy(CountMinUpdate::Conservative, 3, 16, 4);
        let mut b = CountMinSketch::with_policy(CountMinUpdate::Conservative, 3, 16, 4);
        for t in 0..5000 {
            let k = rng.random_range(0..100u64);
            truth[k as usize] += 1.0;
            if t % 2 == 0 {
                a.update(k, 1.0);
            } else {
                b.update(k, 1.0);
            }
        }
        let merged = a.merge(&b);
        for k in 0..100u64 {
            assert!(merged.estimate(k) >= truth[k as usize] - 1e-9, "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_policy_mismatch() {
        let mut a = CountMinSketch::new(2, 8, 1);
        let b = CountMinSketch::with_policy(CountMinUpdate::Conservative, 2, 8, 1);
        a.merge_from(&b);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        for policy in [CountMinUpdate::Classic, CountMinUpdate::Conservative] {
            let mut cm = CountMinSketch::with_policy(policy, 4, 32, 23);
            for k in 0..300u64 {
                cm.update(k, f64::from((k % 6) as u32));
            }
            let bytes = cm.to_snapshot_bytes();
            let back = CountMinSketch::from_snapshot_bytes(&bytes).unwrap();
            assert!(back.merge_compatible(&cm));
            assert_eq!(back.total().to_bits(), cm.total().to_bits());
            assert_eq!(back.to_snapshot_bytes(), bytes);
            for k in 0..300u64 {
                assert!(back.estimate(k).to_bits() == cm.estimate(k).to_bits());
            }
        }
    }

    #[test]
    fn snapshot_rejects_unknown_policy() {
        let cm = CountMinSketch::new(2, 8, 1);
        let mut bytes = cm.to_snapshot_bytes();
        // Policy byte sits right after envelope (6) + section tag/len (5).
        bytes[11] = 9;
        wmsketch_hashing::codec::reseal_record(&mut bytes);
        assert!(matches!(
            CountMinSketch::from_snapshot_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn clear_resets_total() {
        let mut cm = CountMinSketch::new(2, 8, 1);
        cm.update(1, 5.0);
        cm.clear();
        assert_eq!(cm.total(), 0.0);
        assert_eq!(cm.estimate(1), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative")]
    fn negative_update_panics_in_debug() {
        let mut cm = CountMinSketch::new(2, 8, 1);
        cm.update(1, -1.0);
    }
}
