//! Linear sketch substrates: Count-Sketch and Count-Min.
//!
//! The WM-Sketch (paper §5.1) *is* a Count-Sketch whose cells hold gradient
//! accumulations instead of counts, so the Count-Sketch here is the core
//! data structure of the whole reproduction. The Count-Min sketch backs two
//! baselines: the Count-Min frequent-features classifier (§7.2) and the
//! paired-Count-Min relative-deltoid detector the paper compares against in
//! Figure 10 (§8.2).
//!
//! Both sketches are *linear*: `sketch(a·x + b·y) = a·sketch(x) + b·sketch(y)`,
//! which is what lets gradient updates be applied directly in sketch space.

#![warn(missing_docs)]

pub mod countmin;
pub mod countsketch;
pub mod median;

pub use countmin::{CountMinSketch, CountMinUpdate};
pub use countsketch::CountSketch;
pub use median::{
    median_inplace, median_network_inplace, median_select_inplace, signed_median_estimate,
    NETWORK_MAX_DEPTH,
};
pub use wmsketch_hashing::codec::{self, CodecError, SnapshotCodec};
