//! The Count-Sketch of Charikar, Chen & Farach-Colton (2002).
//!
//! A depth-`s`, width-`w` array of cells. Each key `i` hashes to one cell
//! per row with a random sign; increments are sign-flipped into the cells
//! and the point estimate is the median over rows of the sign-corrected
//! cells. Lemma 1 of the paper: with width `Θ(1/ε²)` and depth
//! `Θ(log(d/δ))`, `|x̂_i − x_i| ≤ ε‖x‖₂` with probability `1 − δ`.

use wmsketch_hashing::codec::{self, CodecError, Reader, SnapshotCodec, Writer, KIND_COUNT_SKETCH};
use wmsketch_hashing::{HashFamilyKind, RowHashers};

use crate::median::signed_median_estimate;

/// Section tag for a sketch-shape header (shared by both substrates).
pub(crate) const SECTION_HEADER: u8 = 0x01;
/// Section tag for a row-major `f64` cell array.
pub(crate) const SECTION_CELLS: u8 = 0x02;

/// Encodes a cell array under [`SECTION_CELLS`].
pub(crate) fn put_cells(w: &mut Writer, cells: &[f64]) {
    codec::put_f64_section(w, SECTION_CELLS, cells);
}

/// Decodes a cell array written by [`put_cells`], validating the count
/// against the expected `depth × width`.
pub(crate) fn take_cells(r: &mut Reader<'_>, expected: usize) -> Result<Vec<f64>, CodecError> {
    codec::take_f64_section(r, SECTION_CELLS, expected)
}

/// A Count-Sketch over 64-bit keys with `f64` cell values.
///
/// Values are `f64` rather than integers because the same structure carries
/// classifier gradients in the WM-Sketch; for pure counting workloads pass
/// integral deltas.
#[derive(Clone)]
pub struct CountSketch {
    hashers: RowHashers,
    /// Row-major `depth × width` cell array.
    table: Vec<f64>,
    width: usize,
    depth: usize,
    /// Hash family and seed, kept so [`CountSketch::merge_from`] can verify
    /// two sketches share the same projection.
    kind: HashFamilyKind,
    seed: u64,
}

impl std::fmt::Debug for CountSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSketch")
            .field("depth", &self.depth)
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

impl CountSketch {
    /// Creates a `depth × width` Count-Sketch with tabulation hashing,
    /// deterministically seeded.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    #[must_use]
    pub fn new(depth: u32, width: u32, seed: u64) -> Self {
        Self::with_family(HashFamilyKind::Tabulation, depth, width, seed)
    }

    /// Creates a Count-Sketch backed by the given hash family.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    #[must_use]
    pub fn with_family(kind: HashFamilyKind, depth: u32, width: u32, seed: u64) -> Self {
        let hashers = RowHashers::new(kind, depth, width, seed);
        Self {
            hashers,
            table: vec![0.0; depth as usize * width as usize],
            width: width as usize,
            depth: depth as usize,
            kind,
            seed,
        }
    }

    /// Whether `other` uses the same shape, hash family, and seed — i.e.
    /// the two sketches apply the identical linear projection, making
    /// cell-wise merges meaningful.
    #[must_use]
    pub fn merge_compatible(&self, other: &Self) -> bool {
        self.depth == other.depth
            && self.width == other.width
            && self.kind == other.kind
            && self.seed == other.seed
    }

    /// Adds `other`'s cells into `self`.
    ///
    /// The Count-Sketch is a linear map `x ↦ Ax`, so the merged sketch is
    /// *exactly* the sketch of the combined update stream: estimates after
    /// the merge equal those of a single sketch that saw both streams
    /// (Kallaugher–Price turnstile/linear-sketch equivalence). The merge is
    /// cell-wise addition; when all deltas are exactly representable sums
    /// (e.g. integral counts), it is bit-identical to the unsplit sketch
    /// regardless of how the stream was partitioned.
    ///
    /// # Panics
    /// Panics if the sketches are not [`CountSketch::merge_compatible`].
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "merging incompatible Count-Sketches ({}x{} seed {} vs {}x{} seed {})",
            self.depth,
            self.width,
            self.seed,
            other.depth,
            other.width,
            other.seed
        );
        for (cell, &o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
    }

    /// Consuming variant of [`CountSketch::merge_from`], for fold-style
    /// reduction chains.
    ///
    /// # Panics
    /// Panics if the sketches are not [`CountSketch::merge_compatible`].
    #[must_use]
    pub fn merge(mut self, other: &Self) -> Self {
        self.merge_from(other);
        self
    }

    /// Sketch depth (number of rows).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Row width (buckets per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of cells (`depth × width`), i.e. the paper's size `k`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Adds `delta` to the sketched value of `key`.
    ///
    /// Hashes `key` once per row through the monomorphized coordinate
    /// walk — no per-row hash-family dispatch.
    #[inline]
    pub fn update(&mut self, key: u64, delta: f64) {
        let Self { hashers, table, .. } = self;
        hashers.for_each_coord(key, |offset, sign| table[offset] += sign * delta);
    }

    /// Point estimate of the sketched value of `key` (median over rows of
    /// the sign-corrected cells).
    #[must_use]
    pub fn estimate(&self, key: u64) -> f64 {
        signed_median_estimate(&self.hashers, &self.table, key, 1.0)
    }

    /// The ℓ2 norm of the cell array, an upper bound on `‖x‖₂` per row
    /// useful for error diagnostics.
    #[must_use]
    pub fn cell_l2_norm(&self) -> f64 {
        self.table.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Resets every cell to zero.
    pub fn clear(&mut self) {
        self.table.fill(0.0);
    }

    /// Read-only view of the raw cell array (row-major), used by tests and
    /// by the WM-Sketch which manages the same layout itself.
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.table
    }
}

/// Snapshot layout (after the `WMS1` envelope, kind
/// [`KIND_COUNT_SKETCH`]):
///
/// ```text
/// section 0x01 HEADER: hash_family | depth (u32) | width (u32) | seed (u64)
/// section 0x02 CELLS:  count (u64) | count × f64 (raw bit patterns)
/// ```
///
/// The header carries the hash-family kind and seed, so a decoded sketch
/// reconstructs the identical projection and is
/// [`CountSketch::merge_compatible`] with its origin.
impl SnapshotCodec for CountSketch {
    const KIND: u8 = KIND_COUNT_SKETCH;

    fn encode_body(&self, w: &mut Writer) {
        let mark = w.begin_section(SECTION_HEADER);
        codec::put_hash_family(w, self.kind);
        w.put_u32(self.depth as u32);
        w.put_u32(self.width as u32);
        w.put_u64(self.seed);
        w.end_section(mark);
        put_cells(w, &self.table);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut h = r.expect_section(SECTION_HEADER)?;
        let kind = codec::take_hash_family(&mut h)?;
        let depth = h.take_u32()?;
        let width = h.take_u32()?;
        let seed = h.take_u64()?;
        h.finish()?;
        if depth == 0 || width == 0 {
            return Err(CodecError::Invalid("sketch depth/width must be nonzero"));
        }
        let expected = (depth as usize)
            .checked_mul(width as usize)
            .ok_or(CodecError::Invalid("depth*width overflows"))?;
        let table = take_cells(r, expected)?;
        let mut cs = Self::with_family(kind, depth, width, seed);
        cs.table = table;
        Ok(cs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_single_key() {
        let mut cs = CountSketch::new(3, 16, 1);
        cs.update(42, 5.0);
        cs.update(42, 2.5);
        assert_eq!(cs.estimate(42), 7.5);
    }

    #[test]
    fn zero_for_unseen_keys_in_empty_sketch() {
        let cs = CountSketch::new(3, 16, 1);
        for k in 0..100 {
            assert_eq!(cs.estimate(k), 0.0);
        }
    }

    #[test]
    fn linearity_negative_updates_cancel() {
        let mut cs = CountSketch::new(5, 32, 2);
        for k in 0..200u64 {
            cs.update(k, 3.0);
        }
        for k in 0..200u64 {
            cs.update(k, -3.0);
        }
        assert_eq!(cs.cell_l2_norm(), 0.0);
        assert_eq!(cs.estimate(17), 0.0);
    }

    #[test]
    fn heavy_item_recovered_among_noise() {
        let mut cs = CountSketch::new(5, 256, 3);
        cs.update(999, 1000.0);
        for k in 0..500u64 {
            cs.update(k, 1.0);
        }
        let est = cs.estimate(999);
        // ‖tail‖₂ = sqrt(500) ≈ 22.4; estimate should be within a few ε of it.
        assert!((est - 1000.0).abs() < 30.0, "estimate {est}");
    }

    #[test]
    fn depth_one_is_a_single_hash_table() {
        let mut cs = CountSketch::new(1, 8, 4);
        cs.update(1, 10.0);
        let e = cs.estimate(1);
        assert_eq!(e, 10.0);
        assert_eq!(cs.size(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut cs = CountSketch::new(2, 8, 5);
        cs.update(7, 1.0);
        cs.clear();
        assert_eq!(cs.estimate(7), 0.0);
        assert!(cs.cells().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CountSketch::new(3, 64, 9);
        let mut b = CountSketch::new(3, 64, 9);
        for k in 0..1000u64 {
            a.update(k % 37, 1.0);
            b.update(k % 37, 1.0);
        }
        for k in 0..37u64 {
            assert_eq!(a.estimate(k), b.estimate(k));
        }
    }

    #[test]
    fn large_depth_spill_path() {
        let mut cs = CountSketch::new(80, 128, 6);
        cs.update(5, 9.0);
        assert_eq!(cs.estimate(5), 9.0);
    }

    #[test]
    fn merge_equals_unsplit_sketch() {
        let mut whole = CountSketch::new(4, 64, 13);
        let mut left = CountSketch::new(4, 64, 13);
        let mut right = CountSketch::new(4, 64, 13);
        for k in 0..300u64 {
            let d = f64::from((k % 7) as u32) - 3.0;
            whole.update(k, d);
            if k % 3 == 0 {
                left.update(k, d);
            } else {
                right.update(k, d);
            }
        }
        left.merge_from(&right);
        assert_eq!(left.cells(), whole.cells());
        for k in 0..300u64 {
            assert_eq!(left.estimate(k), whole.estimate(k));
        }
    }

    #[test]
    fn merge_consuming_chain() {
        let mut a = CountSketch::new(2, 16, 1);
        let mut b = CountSketch::new(2, 16, 1);
        a.update(3, 1.0);
        b.update(3, 2.0);
        let merged = a.merge(&b);
        assert_eq!(merged.estimate(3), 3.0);
    }

    #[test]
    fn merge_compatibility_checks_shape_family_and_seed() {
        let base = CountSketch::new(3, 32, 9);
        assert!(base.merge_compatible(&CountSketch::new(3, 32, 9)));
        assert!(!base.merge_compatible(&CountSketch::new(4, 32, 9)));
        assert!(!base.merge_compatible(&CountSketch::new(3, 64, 9)));
        assert!(!base.merge_compatible(&CountSketch::new(3, 32, 8)));
        assert!(!base.merge_compatible(&CountSketch::with_family(
            HashFamilyKind::Polynomial(4),
            3,
            32,
            9
        )));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_mismatched_seed() {
        let mut a = CountSketch::new(3, 32, 1);
        let b = CountSketch::new(3, 32, 2);
        a.merge_from(&b);
    }

    #[test]
    fn clone_is_merge_compatible_and_independent() {
        let mut a = CountSketch::new(3, 32, 5);
        a.update(1, 2.0);
        let mut b = a.clone();
        assert!(a.merge_compatible(&b));
        b.update(1, 3.0);
        assert_eq!(a.estimate(1), 2.0);
        assert_eq!(b.estimate(1), 5.0);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            let mut cs = CountSketch::with_family(kind, 5, 64, 17);
            for k in 0..400u64 {
                cs.update(k, f64::from((k % 9) as u32) - 4.0);
            }
            let bytes = cs.to_snapshot_bytes();
            let back = CountSketch::from_snapshot_bytes(&bytes).unwrap();
            assert!(back.merge_compatible(&cs));
            assert_eq!(back.cells(), cs.cells());
            assert_eq!(back.to_snapshot_bytes(), bytes);
            for k in 0..400u64 {
                assert!(back.estimate(k).to_bits() == cs.estimate(k).to_bits());
            }
        }
    }

    #[test]
    fn snapshot_rejects_zero_shape() {
        let cs = CountSketch::new(2, 8, 1);
        let mut bytes = cs.to_snapshot_bytes();
        // Header layout: envelope (6) + tag/len (5) + family (1) = 12;
        // depth u32 starts at offset 12.
        bytes[12..16].copy_from_slice(&0u32.to_le_bytes());
        codec::reseal_record(&mut bytes);
        assert!(matches!(
            CountSketch::from_snapshot_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    /// Empirical check of the Charikar et al. guarantee (paper Lemma 1):
    /// with width Θ(1/ε²), error ≤ ε‖x‖₂ for most keys.
    #[test]
    fn recovery_error_bounded_by_l2_norm() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let n_keys = 2000u64;
        let mut truth = vec![0.0f64; n_keys as usize];
        let mut cs = CountSketch::new(5, 512, 11);
        for _ in 0..20_000 {
            let k = rng.random_range(0..n_keys);
            let d = rng.random_range(-3.0..3.0);
            truth[k as usize] += d;
            cs.update(k, d);
        }
        let l2 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
        // ε ≈ sqrt(6/width) ≈ 0.108 per row; with depth-5 medians, failures
        // should be essentially absent at 3ε.
        let eps = (6.0 / 512.0f64).sqrt();
        let failures = (0..n_keys)
            .filter(|&k| (cs.estimate(k) - truth[k as usize]).abs() > 3.0 * eps * l2)
            .count();
        assert!(
            failures <= n_keys as usize / 100,
            "failures: {failures} of {n_keys} (εl2 = {:.3})",
            eps * l2
        );
    }
}
