//! Property-based tests for the sketch substrates.

use proptest::prelude::*;
use wmsketch_sketch::{median_inplace, CountMinSketch, CountSketch};

proptest! {
    /// The Count-Sketch is a linear map: sketching a stream and its
    /// element-wise negation must cancel exactly.
    #[test]
    fn countsketch_linearity(updates in prop::collection::vec((0u64..128, -10.0f64..10.0), 1..200)) {
        let mut cs = CountSketch::new(3, 32, 42);
        for &(k, d) in &updates {
            cs.update(k, d);
        }
        for &(k, d) in &updates {
            cs.update(k, -d);
        }
        prop_assert!(cs.cells().iter().all(|&c| c.abs() < 1e-9));
    }

    /// Sketch estimates agree with exact counts when keys are so few that
    /// the single row has no collisions (keys < width/ several, depth high).
    #[test]
    fn countsketch_matches_truth_without_heavy_tail(
        updates in prop::collection::vec((0u64..8, -5.0f64..5.0), 1..100)
    ) {
        // Depth 7 and width 1024 make per-row collisions vanishingly rare
        // over only 8 distinct keys; the median then recovers exactly.
        let mut cs = CountSketch::new(7, 1024, 3);
        let mut truth = [0.0f64; 8];
        for &(k, d) in &updates {
            truth[k as usize] += d;
            cs.update(k, d);
        }
        for k in 0..8u64 {
            let err = (cs.estimate(k) - truth[k as usize]).abs();
            prop_assert!(err < 1e-9, "key {} err {}", k, err);
        }
    }

    /// Count-Min never underestimates, for any non-negative update stream.
    #[test]
    fn countmin_one_sided(updates in prop::collection::vec((0u64..64, 0.0f64..5.0), 1..200)) {
        let mut cm = CountMinSketch::new(3, 16, 7);
        let mut truth = [0.0f64; 64];
        for &(k, d) in &updates {
            truth[k as usize] += d;
            cm.update(k, d);
        }
        for k in 0..64u64 {
            prop_assert!(cm.estimate(k) >= truth[k as usize] - 1e-9);
        }
    }

    /// Count-Min total equals the sum of deltas.
    #[test]
    fn countmin_total_is_stream_mass(updates in prop::collection::vec((0u64..64, 0.0f64..5.0), 0..100)) {
        let mut cm = CountMinSketch::new(2, 16, 1);
        let mut sum = 0.0;
        for &(k, d) in &updates {
            sum += d;
            cm.update(k, d);
        }
        prop_assert!((cm.total() - sum).abs() < 1e-9);
    }

    /// median_inplace returns an element of the input and at least half the
    /// elements are ≤ it and at least half are ≥ it (lower-median semantics).
    #[test]
    fn median_is_order_statistic(mut xs in prop::collection::vec(-100.0f64..100.0, 1..40)) {
        let original = xs.clone();
        let m = median_inplace(&mut xs);
        prop_assert!(original.contains(&m));
        let le = original.iter().filter(|&&v| v <= m).count();
        let ge = original.iter().filter(|&&v| v >= m).count();
        prop_assert!(le >= original.len().div_ceil(2));
        prop_assert!(ge >= original.len() / 2);
    }
}
