//! Property-based tests for the sketch substrates.

use proptest::prelude::*;
use wmsketch_hashing::HashFamilyKind;
use wmsketch_sketch::{median_inplace, CountMinSketch, CountSketch};

/// Strategy: an update stream with *integral* deltas, so every partial sum
/// is exactly representable and merge results can be compared bit for bit
/// (f64 addition of small integers is associative; arbitrary reals are
/// not).
fn integral_updates() -> impl Strategy<Value = Vec<(u64, i32)>> {
    prop::collection::vec((0u64..96, -16i32..17), 1..250)
}

/// Depths exercised by the merge tests: the depth-1 fast case, a mid
/// depth, and one past the 64-row stack-buffer spill of the median
/// recovery path.
const MERGE_DEPTHS: [u32; 3] = [1, 6, 80];

proptest! {
    /// Count-Sketch merge linearity: for any update stream split at an
    /// arbitrary point into two sketches, `a.merge(b)` must be
    /// bit-identical — cells *and* estimates — to the sketch of the
    /// unsplit stream, across both hash families and depths > 64.
    #[test]
    fn countsketch_merge_is_bit_identical_to_unsplit(
        updates in integral_updates(),
        split_pct in 0usize..101,
    ) {
        let split = updates.len() * split_pct / 100;
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            for depth in MERGE_DEPTHS {
                let mut whole = CountSketch::with_family(kind, depth, 32, 11);
                let mut a = CountSketch::with_family(kind, depth, 32, 11);
                let mut b = CountSketch::with_family(kind, depth, 32, 11);
                for (i, &(k, d)) in updates.iter().enumerate() {
                    whole.update(k, f64::from(d));
                    if i < split {
                        a.update(k, f64::from(d));
                    } else {
                        b.update(k, f64::from(d));
                    }
                }
                let merged = a.merge(&b);
                prop_assert_eq!(merged.cells(), whole.cells());
                for k in 0..96u64 {
                    let (m, w) = (merged.estimate(k), whole.estimate(k));
                    prop_assert!(
                        m.to_bits() == w.to_bits(),
                        "{:?} depth {}: key {} merged {} vs whole {}", kind, depth, k, m, w
                    );
                }
            }
        }
    }

    /// Count-Min (classic policy) merge linearity: split-and-merge is
    /// bit-identical to the unsplit sketch, including the stream total.
    #[test]
    fn countmin_merge_is_bit_identical_to_unsplit(
        updates in prop::collection::vec((0u64..96, 0i32..24), 1..250),
        split_pct in 0usize..101,
    ) {
        let split = updates.len() * split_pct / 100;
        for depth in MERGE_DEPTHS {
            let mut whole = CountMinSketch::new(depth, 32, 19);
            let mut a = CountMinSketch::new(depth, 32, 19);
            let mut b = CountMinSketch::new(depth, 32, 19);
            for (i, &(k, d)) in updates.iter().enumerate() {
                whole.update(k, f64::from(d));
                if i < split {
                    a.update(k, f64::from(d));
                } else {
                    b.update(k, f64::from(d));
                }
            }
            a.merge_from(&b);
            prop_assert!(a.total().to_bits() == whole.total().to_bits());
            for k in 0..96u64 {
                let (m, w) = (a.estimate(k), whole.estimate(k));
                prop_assert!(
                    m.to_bits() == w.to_bits(),
                    "depth {}: key {} merged {} vs whole {}", depth, k, m, w
                );
            }
        }
    }

    /// Merging is order-insensitive: a.merge(b) and b.merge(a) agree on
    /// every estimate (cell-wise addition of exactly-representable sums).
    #[test]
    fn countsketch_merge_commutes(updates in integral_updates()) {
        let mut a = CountSketch::new(5, 32, 23);
        let mut b = CountSketch::new(5, 32, 23);
        for (i, &(k, d)) in updates.iter().enumerate() {
            if i % 2 == 0 {
                a.update(k, f64::from(d));
            } else {
                b.update(k, f64::from(d));
            }
        }
        let ab = a.clone().merge(&b);
        let ba = b.merge(&a);
        prop_assert_eq!(ab.cells(), ba.cells());
    }
    /// The Count-Sketch is a linear map: sketching a stream and its
    /// element-wise negation must cancel exactly.
    #[test]
    fn countsketch_linearity(updates in prop::collection::vec((0u64..128, -10.0f64..10.0), 1..200)) {
        let mut cs = CountSketch::new(3, 32, 42);
        for &(k, d) in &updates {
            cs.update(k, d);
        }
        for &(k, d) in &updates {
            cs.update(k, -d);
        }
        prop_assert!(cs.cells().iter().all(|&c| c.abs() < 1e-9));
    }

    /// Sketch estimates agree with exact counts when keys are so few that
    /// the single row has no collisions (keys < width/ several, depth high).
    #[test]
    fn countsketch_matches_truth_without_heavy_tail(
        updates in prop::collection::vec((0u64..8, -5.0f64..5.0), 1..100)
    ) {
        // Depth 7 and width 1024 make per-row collisions vanishingly rare
        // over only 8 distinct keys; the median then recovers exactly.
        let mut cs = CountSketch::new(7, 1024, 3);
        let mut truth = [0.0f64; 8];
        for &(k, d) in &updates {
            truth[k as usize] += d;
            cs.update(k, d);
        }
        for k in 0..8u64 {
            let err = (cs.estimate(k) - truth[k as usize]).abs();
            prop_assert!(err < 1e-9, "key {} err {}", k, err);
        }
    }

    /// Count-Min never underestimates, for any non-negative update stream.
    #[test]
    fn countmin_one_sided(updates in prop::collection::vec((0u64..64, 0.0f64..5.0), 1..200)) {
        let mut cm = CountMinSketch::new(3, 16, 7);
        let mut truth = [0.0f64; 64];
        for &(k, d) in &updates {
            truth[k as usize] += d;
            cm.update(k, d);
        }
        for k in 0..64u64 {
            prop_assert!(cm.estimate(k) >= truth[k as usize] - 1e-9);
        }
    }

    /// Count-Min total equals the sum of deltas.
    #[test]
    fn countmin_total_is_stream_mass(updates in prop::collection::vec((0u64..64, 0.0f64..5.0), 0..100)) {
        let mut cm = CountMinSketch::new(2, 16, 1);
        let mut sum = 0.0;
        for &(k, d) in &updates {
            sum += d;
            cm.update(k, d);
        }
        prop_assert!((cm.total() - sum).abs() < 1e-9);
    }

    /// median_inplace returns an element of the input and at least half the
    /// elements are ≤ it and at least half are ≥ it (lower-median semantics).
    #[test]
    fn median_is_order_statistic(mut xs in prop::collection::vec(-100.0f64..100.0, 1..40)) {
        let original = xs.clone();
        let m = median_inplace(&mut xs);
        prop_assert!(original.contains(&m));
        let le = original.iter().filter(|&&v| v <= m).count();
        let ge = original.iter().filter(|&&v| v >= m).count();
        prop_assert!(le >= original.len().div_ceil(2));
        prop_assert!(ge >= original.len() / 2);
    }
}
