//! Property tests for the `WMS1` substrate codecs: round-trip
//! bit-identity across hash families and depths past the 64-row median
//! spill, and typed (panic-free) rejection of damaged buffers.

use proptest::prelude::*;
use wmsketch_hashing::HashFamilyKind;
use wmsketch_sketch::{CodecError, CountMinSketch, CountMinUpdate, CountSketch, SnapshotCodec};

/// Update streams with integral deltas (so estimates are exactly
/// representable) over a small key domain.
fn updates() -> impl Strategy<Value = Vec<(u64, i32)>> {
    prop::collection::vec((0u64..96, -16i32..17), 1..200)
}

/// The depth-1 fast path, a mid depth, and one past the 64-row stack
/// spill of the median recovery.
const DEPTHS: [u32; 3] = [1, 6, 80];

proptest! {
    /// Count-Sketch snapshots round-trip bit-identically: cells, seeds,
    /// hash family (⇒ merge compatibility), estimates, and the encoded
    /// bytes themselves.
    #[test]
    fn countsketch_snapshot_round_trip(updates in updates(), seed in 0u64..1000) {
        for kind in [HashFamilyKind::Tabulation, HashFamilyKind::Polynomial(4)] {
            for depth in DEPTHS {
                let mut cs = CountSketch::with_family(kind, depth, 32, seed);
                for &(k, d) in &updates {
                    cs.update(k, f64::from(d));
                }
                let bytes = cs.to_snapshot_bytes();
                let back = CountSketch::from_snapshot_bytes(&bytes).expect("round trip");
                prop_assert!(back.merge_compatible(&cs));
                prop_assert_eq!(back.cells(), cs.cells());
                prop_assert_eq!(back.to_snapshot_bytes(), bytes);
                for k in 0..96u64 {
                    prop_assert!(back.estimate(k).to_bits() == cs.estimate(k).to_bits());
                }
            }
        }
    }

    /// Count-Min snapshots round-trip bit-identically under both update
    /// policies, including the stream total.
    #[test]
    fn countmin_snapshot_round_trip(updates in updates(), seed in 0u64..1000) {
        for policy in [CountMinUpdate::Classic, CountMinUpdate::Conservative] {
            for depth in DEPTHS {
                let mut cm = CountMinSketch::with_policy(policy, depth, 32, seed);
                for &(k, d) in &updates {
                    cm.update(k, f64::from(d.unsigned_abs()));
                }
                let bytes = cm.to_snapshot_bytes();
                let back = CountMinSketch::from_snapshot_bytes(&bytes).expect("round trip");
                prop_assert!(back.merge_compatible(&cm));
                prop_assert!(back.total().to_bits() == cm.total().to_bits());
                prop_assert_eq!(back.to_snapshot_bytes(), bytes);
                for k in 0..96u64 {
                    prop_assert!(back.estimate(k).to_bits() == cm.estimate(k).to_bits());
                }
            }
        }
    }

    /// A decoded snapshot is a drop-in merge peer: merging the decoded
    /// copy equals merging the original, bit for bit.
    #[test]
    fn decoded_snapshot_merges_identically(updates in updates(), split_pct in 0usize..101) {
        let split = updates.len() * split_pct / 100;
        let mut a1 = CountSketch::new(5, 64, 7);
        let mut a2 = CountSketch::new(5, 64, 7);
        let mut b = CountSketch::new(5, 64, 7);
        for (i, &(k, d)) in updates.iter().enumerate() {
            if i < split {
                a1.update(k, f64::from(d));
                a2.update(k, f64::from(d));
            } else {
                b.update(k, f64::from(d));
            }
        }
        let shipped = CountSketch::from_snapshot_bytes(&b.to_snapshot_bytes()).expect("decode");
        a1.merge_from(&b);
        a2.merge_from(&shipped);
        prop_assert_eq!(a1.cells(), a2.cells());
    }

    /// Every strict prefix of a valid snapshot fails with a typed error —
    /// no panics, regardless of where the cut lands.
    #[test]
    fn truncated_snapshots_reject_cleanly(updates in updates()) {
        let mut cs = CountSketch::new(3, 16, 5);
        for &(k, d) in &updates {
            cs.update(k, f64::from(d));
        }
        let bytes = cs.to_snapshot_bytes();
        for n in 0..bytes.len() {
            prop_assert!(CountSketch::from_snapshot_bytes(&bytes[..n]).is_err(), "prefix {}", n);
        }
    }

    /// Single-byte corruption anywhere in the buffer either fails with a
    /// typed error or decodes — it never panics. (Corrupting cell *values*
    /// legitimately decodes; structural bytes must error.)
    #[test]
    fn corrupted_snapshots_never_panic(pos in 0usize..200, delta in 1u8..255) {
        let mut cs = CountSketch::new(3, 16, 5);
        cs.update(9, 2.0);
        let mut bytes = cs.to_snapshot_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = CountSketch::from_snapshot_bytes(&bytes);
    }
}

#[test]
fn foreign_magic_rejected_with_typed_error() {
    let cs = CountSketch::new(2, 8, 1);
    let mut bytes = cs.to_snapshot_bytes();

    // A buffer from some other format family entirely.
    bytes[0..4].copy_from_slice(b"\x89PNG");
    assert!(matches!(
        CountSketch::from_snapshot_bytes(&bytes),
        Err(CodecError::BadMagic { .. })
    ));

    // A future WMS version: distinguishable from garbage.
    let mut vnext = cs.to_snapshot_bytes();
    vnext[3] = b'9';
    assert!(matches!(
        CountSketch::from_snapshot_bytes(&vnext),
        Err(CodecError::UnsupportedVersion(b'9'))
    ));

    // A Count-Min snapshot is not a Count-Sketch snapshot.
    let cm = CountMinSketch::new(2, 8, 1);
    assert!(matches!(
        CountSketch::from_snapshot_bytes(&cm.to_snapshot_bytes()),
        Err(CodecError::WrongKind { .. })
    ));

    // The empty buffer is a truncation, not a panic.
    assert!(matches!(
        CountSketch::from_snapshot_bytes(&[]),
        Err(CodecError::Truncated { .. })
    ));
}
