//! Property-based tests for the heavy-hitter substrates.

use proptest::prelude::*;
use wmsketch_hh::{IndexedHeap, MisraGries, SpaceSaving, TopKWeights};

proptest! {
    /// The indexed heap behaves identically to a sort: inserting arbitrary
    /// pairs and popping everything yields priorities in ascending order,
    /// with the position map intact throughout.
    #[test]
    fn heap_pops_sorted(pairs in prop::collection::vec((0u32..50, -1e6f64..1e6), 1..100)) {
        let mut h = IndexedHeap::new();
        let mut model = std::collections::HashMap::new();
        for &(k, p) in &pairs {
            h.insert(k, p);
            model.insert(k, p);
        }
        h.assert_invariants();
        let mut popped = Vec::new();
        while let Some((k, p)) = h.pop_min() {
            prop_assert_eq!(model.remove(&k), Some(p));
            popped.push(p);
        }
        prop_assert!(model.is_empty());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    /// TopKWeights tracks exactly the same set as a brute-force "keep the
    /// K largest |w|" reference when all offered features are distinct.
    #[test]
    fn topk_matches_bruteforce_on_distinct_features(
        weights in prop::collection::vec(-1e3f64..1e3, 1..60),
        k in 1usize..10,
    ) {
        let mut t = TopKWeights::new(k);
        for (f, &w) in weights.iter().enumerate() {
            t.offer(f as u32, w);
        }
        let mut expect: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        expect.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        expect.truncate(k);
        let got: std::collections::HashSet<u32> = t.iter().map(|e| e.feature).collect();
        // Sets can differ on ties; compare the magnitude of the smallest
        // kept entry instead, which is tie-insensitive.
        let min_kept_got = t.iter().map(|e| e.weight.abs()).fold(f64::INFINITY, f64::min);
        let min_kept_expect = expect.iter().map(|(_, w)| w.abs()).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(got.len(), expect.len());
        prop_assert!((min_kept_got - min_kept_expect).abs() < 1e-12);
    }

    /// Space-Saving invariants on arbitrary streams: counter ≥ truth for
    /// monitored items, guaranteed ≤ truth, overestimate ≤ total/capacity.
    #[test]
    fn spacesaving_invariants(stream in prop::collection::vec(0u64..40, 1..500), cap in 2usize..20) {
        let mut ss = SpaceSaving::new(cap);
        let mut truth = std::collections::HashMap::new();
        for &item in &stream {
            *truth.entry(item).or_insert(0.0) += 1.0;
            ss.update(item, 1.0);
        }
        prop_assert!((ss.total() - stream.len() as f64).abs() < 1e-9);
        let bound = ss.total() / cap as f64;
        for e in ss.iter() {
            let t = truth.get(&e.item).copied().unwrap_or(0.0);
            prop_assert!(e.count >= t - 1e-9);
            prop_assert!(e.count - t <= bound + 1e-9);
            prop_assert!(ss.guaranteed(e.item) <= t + 1e-9);
        }
        prop_assert!(ss.len() <= cap);
    }

    /// Misra–Gries never overestimates and undercounts by at most
    /// N/(capacity+1).
    #[test]
    fn misragries_invariants(stream in prop::collection::vec(0u64..30, 1..400), cap in 1usize..16) {
        let mut mg = MisraGries::new(cap);
        let mut truth = std::collections::HashMap::new();
        for &item in &stream {
            *truth.entry(item).or_insert(0u64) += 1;
            mg.update(item);
        }
        let bound = stream.len() as f64 / (cap as f64 + 1.0);
        for (&item, &t) in &truth {
            let est = mg.estimate(item);
            prop_assert!(est <= t);
            prop_assert!(t as f64 - est as f64 <= bound + 1e-9);
        }
        prop_assert!(mg.len() <= cap);
    }
}
