//! Top-K-by-absolute-weight tracking — "the heap" of the paper's
//! Algorithms 2 (AWM-Sketch active set), 3 (Simple Truncation) and
//! 4 (Probabilistic Truncation).

use crate::indexed_heap::IndexedHeap;

/// One tracked feature and its exactly-stored weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightEntry {
    /// Feature identifier.
    pub feature: u32,
    /// Stored weight (in the caller's units — e.g. pre-scale for learners
    /// using a global scale factor).
    pub weight: f64,
}

/// Result of offering a feature/weight to the tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Offer {
    /// The feature was already tracked; its weight was overwritten.
    Updated,
    /// The tracker had spare capacity and admitted the feature.
    Inserted,
    /// The feature displaced the minimum-|weight| entry, which is returned
    /// so the caller can spill it elsewhere (the AWM-Sketch writes it back
    /// into the sketch).
    Evicted(WeightEntry),
    /// The offered |weight| did not beat the current minimum; nothing
    /// changed.
    Rejected,
}

/// Tracks the K features with the largest absolute weights, storing the
/// weights exactly.
///
/// Internally a min-heap ordered by |weight|, so the entry cheapest to
/// displace is always at the root. Weight ordering is invariant under a
/// positive global scale factor, so learners using the lazy-regularization
/// scale trick (paper §5.1) can store pre-scale weights here directly.
#[derive(Debug, Clone)]
pub struct TopKWeights {
    heap: IndexedHeap<u32>,
    weights: wmsketch_hashing::FastHashMap<u32, f64>,
    capacity: usize,
}

impl TopKWeights {
    /// Creates a tracker holding at most `capacity` features.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-K capacity must be nonzero");
        Self {
            heap: IndexedHeap::with_capacity(capacity),
            weights: wmsketch_hashing::FastHashMap::default(),
            capacity,
        }
    }

    /// Builds a tracker holding the `capacity` heaviest of `entries`,
    /// ranked by `(|weight| desc, feature asc)` — the shared rebuild step
    /// of merge-time heap/active-set reconstruction. Deterministic for any
    /// input order.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or an entry weight is NaN.
    #[must_use]
    pub fn from_heaviest(capacity: usize, mut entries: Vec<WeightEntry>) -> Self {
        entries.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .expect("NaN weight")
                .then(a.feature.cmp(&b.feature))
        });
        entries.truncate(capacity);
        let mut tracker = Self::new(capacity);
        for e in entries {
            tracker.offer(e.feature, e.weight);
        }
        tracker
    }

    /// Maximum number of tracked features.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of tracked features.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Estimated heap bytes the tracker owns: the indexed heap (slot
    /// array plus position index) and the exact-weight map. An estimate
    /// of allocator reality rather than the paper's §7.1 cost model —
    /// what a memory governor should charge for a resident tracker.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.heap.resident_bytes()
            + self.weights.capacity() * (std::mem::size_of::<(u32, f64)>() + 1)
    }

    /// Whether no features are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `feature` is tracked.
    #[must_use]
    pub fn contains(&self, feature: u32) -> bool {
        self.weights.contains_key(&feature)
    }

    /// The stored weight of `feature`, if tracked.
    #[must_use]
    pub fn get(&self, feature: u32) -> Option<f64> {
        self.weights.get(&feature).copied()
    }

    /// The minimum-|weight| entry, if any.
    #[must_use]
    pub fn min_entry(&self) -> Option<WeightEntry> {
        self.heap.peek_min().map(|(feature, _)| WeightEntry {
            feature,
            weight: self.weights[&feature],
        })
    }

    /// Sets the weight of an *already tracked* feature, rebalancing the
    /// heap. Returns false if the feature is not tracked.
    pub fn update_existing(&mut self, feature: u32, weight: f64) -> bool {
        if let Some(w) = self.weights.get_mut(&feature) {
            *w = weight;
            self.heap.insert(feature, weight.abs());
            true
        } else {
            false
        }
    }

    /// Offers `(feature, weight)` to the tracker; see [`Offer`] for the
    /// possible outcomes.
    pub fn offer(&mut self, feature: u32, weight: f64) -> Offer {
        if self.update_existing(feature, weight) {
            return Offer::Updated;
        }
        if self.heap.len() < self.capacity {
            self.heap.insert(feature, weight.abs());
            self.weights.insert(feature, weight);
            return Offer::Inserted;
        }
        let (min_feature, min_abs) = self.heap.peek_min().expect("capacity > 0");
        if weight.abs() > min_abs {
            let evicted_weight = self
                .weights
                .remove(&min_feature)
                .expect("heap/map out of sync");
            self.heap.pop_min();
            self.heap.insert(feature, weight.abs());
            self.weights.insert(feature, weight);
            Offer::Evicted(WeightEntry {
                feature: min_feature,
                weight: evicted_weight,
            })
        } else {
            Offer::Rejected
        }
    }

    /// Removes `feature`, returning its weight if it was tracked.
    pub fn remove(&mut self, feature: u32) -> Option<f64> {
        self.heap.remove(&feature)?;
        self.weights.remove(&feature)
    }

    /// All tracked entries, unordered.
    pub fn iter(&self) -> impl Iterator<Item = WeightEntry> + '_ {
        self.weights
            .iter()
            .map(|(&feature, &weight)| WeightEntry { feature, weight })
    }

    /// The top `k` entries by |weight|, sorted descending by |weight|.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<WeightEntry> {
        let mut all: Vec<WeightEntry> = self.iter().collect();
        all.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .expect("NaN weight")
                .then(a.feature.cmp(&b.feature))
        });
        all.truncate(k);
        all
    }

    /// Keeps only the `k` largest-|weight| entries (Simple Truncation's
    /// post-update step), removing and discarding the rest.
    pub fn truncate_to(&mut self, k: usize) {
        while self.heap.len() > k {
            let (f, _) = self.heap.pop_min().expect("len > k >= 0");
            self.weights.remove(&f);
        }
    }

    /// Appends this tracker to a snapshot:
    /// `capacity (u64) | count (u64) | count × (feature u32, weight f64)`,
    /// entries in ascending feature order so the bytes are canonical (the
    /// internal map's iteration order never leaks into the encoding).
    pub fn encode_into(&self, w: &mut wmsketch_hashing::codec::Writer) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.len() as u64);
        let mut entries: Vec<WeightEntry> = self.iter().collect();
        entries.sort_by_key(|e| e.feature);
        for e in entries {
            w.put_u32(e.feature);
            w.put_f64(e.weight);
        }
    }

    /// Decodes a tracker written by [`TopKWeights::encode_into`]. Entries
    /// are re-offered in the stored (feature-ascending) order, so decoding
    /// is deterministic regardless of the encoder's insertion history.
    ///
    /// The stored capacity must equal `expected_capacity` (decoding
    /// validates model state against its config *before* allocating, so a
    /// corrupted capacity field cannot demand an absurd reservation).
    ///
    /// # Errors
    /// [`wmsketch_hashing::codec::CodecError`] on truncation, a capacity
    /// mismatch, a zero capacity, more entries than capacity, a duplicate
    /// feature, or a non-finite weight.
    pub fn decode_from(
        r: &mut wmsketch_hashing::codec::Reader<'_>,
        expected_capacity: usize,
    ) -> Result<Self, wmsketch_hashing::codec::CodecError> {
        use wmsketch_hashing::codec::CodecError;
        let capacity = r.take_u64()?;
        let count = r.take_u64()?;
        if capacity == 0 {
            return Err(CodecError::Invalid("top-K capacity is 0"));
        }
        if capacity != expected_capacity as u64 {
            return Err(CodecError::Invalid(
                "top-K capacity does not match the expected configuration",
            ));
        }
        if count > capacity {
            return Err(CodecError::Invalid("top-K entry count exceeds capacity"));
        }
        let capacity = expected_capacity;
        let mut tracker = Self::new(capacity);
        for _ in 0..count {
            let feature = r.take_u32()?;
            let weight = r.take_f64()?;
            if !weight.is_finite() {
                return Err(CodecError::Invalid("non-finite top-K weight"));
            }
            if tracker.contains(feature) {
                return Err(CodecError::Invalid("duplicate top-K feature"));
            }
            tracker.offer(feature, weight);
        }
        Ok(tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_smallest() {
        let mut t = TopKWeights::new(3);
        assert_eq!(t.offer(1, 1.0), Offer::Inserted);
        assert_eq!(t.offer(2, -5.0), Offer::Inserted);
        assert_eq!(t.offer(3, 2.0), Offer::Inserted);
        // |0.5| < min |1.0| → rejected.
        assert_eq!(t.offer(4, 0.5), Offer::Rejected);
        // |3| > 1 → evicts feature 1.
        match t.offer(5, 3.0) {
            Offer::Evicted(e) => {
                assert_eq!(e.feature, 1);
                assert_eq!(e.weight, 1.0);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!t.contains(1));
        assert!(t.contains(5));
    }

    #[test]
    fn negative_weights_ordered_by_magnitude() {
        let mut t = TopKWeights::new(2);
        t.offer(1, -10.0);
        t.offer(2, 1.0);
        t.offer(3, -2.0); // evicts 2 (|1| smallest)
        let feats: Vec<u32> = t.top_k(2).iter().map(|e| e.feature).collect();
        assert_eq!(feats, vec![1, 3]);
    }

    #[test]
    fn update_existing_rebalances() {
        let mut t = TopKWeights::new(2);
        t.offer(1, 5.0);
        t.offer(2, 4.0);
        assert_eq!(t.min_entry().unwrap().feature, 2);
        assert_eq!(t.offer(2, 9.0), Offer::Updated);
        assert_eq!(t.min_entry().unwrap().feature, 1);
        assert_eq!(t.get(2), Some(9.0));
    }

    #[test]
    fn top_k_sorted_descending() {
        let mut t = TopKWeights::new(10);
        for (f, w) in [(1, 0.5), (2, -3.0), (3, 2.0), (4, -0.1)] {
            t.offer(f, w);
        }
        let top = t.top_k(3);
        let feats: Vec<u32> = top.iter().map(|e| e.feature).collect();
        assert_eq!(feats, vec![2, 3, 1]);
        assert_eq!(top[0].weight, -3.0);
    }

    #[test]
    fn truncate_to_keeps_largest() {
        let mut t = TopKWeights::new(10);
        for f in 0..10u32 {
            t.offer(f, f64::from(f));
        }
        t.truncate_to(3);
        assert_eq!(t.len(), 3);
        let feats: Vec<u32> = t.top_k(3).iter().map(|e| e.feature).collect();
        assert_eq!(feats, vec![9, 8, 7]);
    }

    #[test]
    fn from_heaviest_keeps_largest_and_is_order_insensitive() {
        let entries = vec![
            WeightEntry {
                feature: 5,
                weight: -0.5,
            },
            WeightEntry {
                feature: 1,
                weight: 3.0,
            },
            WeightEntry {
                feature: 9,
                weight: -2.0,
            },
            WeightEntry {
                feature: 2,
                weight: 0.1,
            },
        ];
        let mut reversed = entries.clone();
        reversed.reverse();
        let a = TopKWeights::from_heaviest(2, entries);
        let b = TopKWeights::from_heaviest(2, reversed);
        for t in [&a, &b] {
            assert_eq!(t.len(), 2);
            assert!(t.contains(1) && t.contains(9));
            assert_eq!(t.get(9), Some(-2.0));
        }
    }

    #[test]
    fn remove_returns_weight() {
        let mut t = TopKWeights::new(4);
        t.offer(1, 2.5);
        assert_eq!(t.remove(1), Some(2.5));
        assert_eq!(t.remove(1), None);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = TopKWeights::new(0);
    }

    #[test]
    fn codec_round_trip_is_canonical() {
        let mut t = TopKWeights::new(8);
        for (f, w) in [(9, -3.5), (1, 0.25), (400, 2.0), (7, -0.0)] {
            t.offer(f, w);
        }
        let mut w = wmsketch_hashing::codec::Writer::new();
        t.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = wmsketch_hashing::codec::Reader::new(&bytes);
        let back = TopKWeights::decode_from(&mut r, 8).unwrap();
        r.finish().unwrap();
        assert!(matches!(
            TopKWeights::decode_from(&mut wmsketch_hashing::codec::Reader::new(&bytes), 9),
            Err(wmsketch_hashing::codec::CodecError::Invalid(_))
        ));
        assert_eq!(back.capacity(), 8);
        assert_eq!(back.len(), 4);
        assert_eq!(back.get(7), Some(-0.0));
        assert_eq!(back.get(9), Some(-3.5));
        // Re-encoding yields identical bytes even though the decoded
        // tracker was built by a different insertion history.
        let mut w2 = wmsketch_hashing::codec::Writer::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_overfull_and_duplicates() {
        use wmsketch_hashing::codec::{CodecError, Reader, Writer};
        let mut w = Writer::new();
        w.put_u64(1); // capacity
        w.put_u64(2); // count > capacity
        assert!(matches!(
            TopKWeights::decode_from(&mut Reader::new(&w.into_bytes()), 1),
            Err(CodecError::Invalid(_))
        ));
        let mut w = Writer::new();
        w.put_u64(4);
        w.put_u64(2);
        for _ in 0..2 {
            w.put_u32(5);
            w.put_f64(1.0);
        }
        assert!(matches!(
            TopKWeights::decode_from(&mut Reader::new(&w.into_bytes()), 4),
            Err(CodecError::Invalid(_))
        ));
    }
}
