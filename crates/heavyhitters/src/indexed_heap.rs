//! A binary min-heap with a key → slot index, supporting change-key.

use std::hash::Hash;

use wmsketch_hashing::FastHashMap;

/// A binary min-heap over `(key, priority)` pairs with `O(log n)`
/// insert / pop-min / change-priority / remove-by-key and `O(1)` lookup.
///
/// Ties are broken arbitrarily. Priorities must not be NaN.
#[derive(Debug, Clone)]
pub struct IndexedHeap<K: Copy + Eq + Hash> {
    /// Heap-ordered array of (key, priority).
    slots: Vec<(K, f64)>,
    /// key → index into `slots`.
    pos: FastHashMap<K, usize>,
}

impl<K: Copy + Eq + Hash> Default for IndexedHeap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash> IndexedHeap<K> {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            pos: FastHashMap::default(),
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut pos = FastHashMap::default();
        pos.reserve(cap);
        Self {
            slots: Vec::with_capacity(cap),
            pos,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.pos.contains_key(key)
    }

    /// Estimated heap bytes this structure owns: the slot array at its
    /// allocated capacity plus the position index (hash-table buckets
    /// cost their entry size plus one control byte each).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(K, f64)>()
            + self.pos.capacity() * (std::mem::size_of::<(K, usize)>() + 1)
    }

    /// The priority of `key`, if present.
    #[must_use]
    pub fn priority(&self, key: &K) -> Option<f64> {
        self.pos.get(key).map(|&i| self.slots[i].1)
    }

    /// The minimum entry `(key, priority)` without removing it.
    #[must_use]
    pub fn peek_min(&self) -> Option<(K, f64)> {
        self.slots.first().copied()
    }

    /// Inserts `key` with `priority`, or updates its priority if present.
    pub fn insert(&mut self, key: K, priority: f64) {
        debug_assert!(!priority.is_nan(), "NaN priority");
        if let Some(&i) = self.pos.get(&key) {
            let old = self.slots[i].1;
            self.slots[i].1 = priority;
            if priority < old {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        } else {
            let i = self.slots.len();
            self.slots.push((key, priority));
            self.pos.insert(key, i);
            self.sift_up(i);
        }
    }

    /// Removes and returns the minimum entry.
    pub fn pop_min(&mut self) -> Option<(K, f64)> {
        if self.slots.is_empty() {
            return None;
        }
        let min = self.slots[0];
        self.remove_at(0);
        Some(min)
    }

    /// Removes `key`, returning its priority if it was present.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let i = *self.pos.get(key)?;
        let pri = self.slots[i].1;
        self.remove_at(i);
        Some(pri)
    }

    /// Iterates over entries in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f64)> + '_ {
        self.slots.iter().copied()
    }

    fn remove_at(&mut self, i: usize) {
        let last = self.slots.len() - 1;
        self.pos.remove(&self.slots[i].0);
        if i != last {
            self.slots.swap(i, last);
            self.slots.pop();
            *self.pos.get_mut(&self.slots[i].0).expect("stale position") = i;
            // The moved element may need to go either way.
            self.sift_up(i);
            self.sift_down(i);
        } else {
            self.slots.pop();
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].1 < self.slots[parent].1 {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.slots.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.slots[l].1 < self.slots[smallest].1 {
                smallest = l;
            }
            if r < n && self.slots[r].1 < self.slots[smallest].1 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        *self.pos.get_mut(&self.slots[a].0).expect("stale position") = a;
        *self.pos.get_mut(&self.slots[b].0).expect("stale position") = b;
    }

    /// Structural validation (heap order + position map); `O(n)`. Intended
    /// for tests — including release-mode integration tests, so not gated
    /// on `debug_assertions`.
    pub fn assert_invariants(&self) {
        assert_eq!(self.slots.len(), self.pos.len());
        for (i, &(k, p)) in self.slots.iter().enumerate() {
            assert_eq!(self.pos[&k], i, "position map out of sync");
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(self.slots[parent].1 <= p, "heap order violated at {i}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sorted_order() {
        let mut h = IndexedHeap::new();
        for (k, p) in [(1u32, 5.0), (2, 1.0), (3, 3.0), (4, 4.0), (5, 2.0)] {
            h.insert(k, p);
            h.assert_invariants();
        }
        let mut out = Vec::new();
        while let Some((_, p)) = h.pop_min() {
            out.push(p);
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn change_priority_moves_both_directions() {
        let mut h = IndexedHeap::new();
        for i in 0..10u32 {
            h.insert(i, f64::from(i));
        }
        h.insert(9, -1.0); // decrease-key
        h.assert_invariants();
        assert_eq!(h.peek_min(), Some((9, -1.0)));
        h.insert(9, 100.0); // increase-key
        h.assert_invariants();
        assert_eq!(h.peek_min(), Some((0, 0.0)));
        assert_eq!(h.priority(&9), Some(100.0));
    }

    #[test]
    fn remove_by_key_keeps_structure() {
        let mut h = IndexedHeap::new();
        for i in 0..20u32 {
            h.insert(i, f64::from((i * 7) % 20));
        }
        assert_eq!(h.remove(&5), Some(f64::from((5 * 7) % 20)));
        assert_eq!(h.remove(&5), None);
        h.assert_invariants();
        assert_eq!(h.len(), 19);
        assert!(!h.contains(&5));
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut h: IndexedHeap<u32> = IndexedHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.remove(&1), None);
        assert_eq!(h.priority(&1), None);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut h = IndexedHeap::new();
        h.insert(1u32, 10.0);
        h.insert(1, 20.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.priority(&1), Some(20.0));
    }

    #[test]
    fn remove_last_element_path() {
        let mut h = IndexedHeap::new();
        h.insert(1u32, 1.0);
        h.insert(2, 2.0);
        // Element 2 sits in the last slot; removing it exercises the
        // no-swap branch.
        assert_eq!(h.remove(&2), Some(2.0));
        h.assert_invariants();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn randomized_against_reference_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = IndexedHeap::new();
        let mut model: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for _ in 0..5000 {
            let k = rng.random_range(0..100u32);
            match rng.random_range(0..4u32) {
                0 | 1 => {
                    let p = rng.random_range(-100.0..100.0);
                    h.insert(k, p);
                    model.insert(k, p);
                }
                2 => {
                    assert_eq!(h.remove(&k), model.remove(&k));
                }
                _ => {
                    if let Some((mk, mp)) = h.pop_min() {
                        let &min_model = model
                            .values()
                            .min_by(|a, b| a.partial_cmp(b).unwrap())
                            .unwrap();
                        assert_eq!(mp, min_model);
                        model.remove(&mk);
                    } else {
                        assert!(model.is_empty());
                    }
                }
            }
        }
        h.assert_invariants();
        assert_eq!(h.len(), model.len());
    }
}
