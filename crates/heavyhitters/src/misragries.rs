//! The Misra–Gries frequent-items algorithm (1982).
//!
//! Deterministic `k`-counter summary: increments a monitored counter,
//! admits new items while space remains, otherwise decrements *all*
//! counters and drops zeros. Guarantees `true − N/(k+1) ≤ estimate ≤ true`
//! — note the *under*-estimation, the mirror image of Space-Saving.
//! Included as an additional counter-based baseline for ablations.

use wmsketch_hashing::FastHashMap;

/// Misra–Gries summary over 64-bit items with integer counts.
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: FastHashMap<u64, u64>,
    capacity: usize,
    total: u64,
}

impl MisraGries {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries capacity must be nonzero");
        Self {
            counters: FastHashMap::default(),
            capacity,
            total: 0,
        }
    }

    /// Number of monitored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no items are monitored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Stream length observed so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observes one occurrence of `item`.
    pub fn update(&mut self, item: u64) {
        self.total += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, 1);
            return;
        }
        // Decrement phase: every counter loses one; zeros are dropped.
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// The (under-)estimated count of `item` (0 if unmonitored).
    #[must_use]
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// All monitored `(item, count)` pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The `k` highest-count items, sorted descending.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_under_capacity() {
        let mut mg = MisraGries::new(4);
        for _ in 0..3 {
            mg.update(1);
        }
        mg.update(2);
        assert_eq!(mg.estimate(1), 3);
        assert_eq!(mg.estimate(2), 1);
        assert_eq!(mg.estimate(3), 0);
    }

    #[test]
    fn never_overestimates() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2);
        let mut mg = MisraGries::new(16);
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k = rng.random_range(0..300u64);
            *truth.entry(k).or_default() += 1;
            mg.update(k);
        }
        for (&k, &t) in &truth {
            assert!(mg.estimate(k) <= t, "overestimated item {k}");
        }
    }

    #[test]
    fn undercount_bounded_by_n_over_k_plus_one() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(4);
        let k = 32;
        let mut mg = MisraGries::new(k);
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let item = rng.random_range(0..200u64);
            *truth.entry(item).or_default() += 1;
            mg.update(item);
        }
        let bound = mg.total() as f64 / (k as f64 + 1.0);
        for (&item, &t) in &truth {
            let under = t as f64 - mg.estimate(item) as f64;
            assert!(
                under <= bound + 1e-9,
                "item {item}: under {under} > bound {bound}"
            );
        }
    }

    #[test]
    fn majority_element_survives() {
        let mut mg = MisraGries::new(1);
        // Classic majority: item 7 appears 60 of 100 times.
        for i in 0..100u64 {
            mg.update(if i % 5 < 3 { 7 } else { i });
        }
        assert!(mg.estimate(7) > 0, "majority element lost");
    }

    #[test]
    fn decrement_drops_to_empty_possible() {
        let mut mg = MisraGries::new(1);
        mg.update(1);
        mg.update(2); // decrements 1 → dropped, 2 not inserted
        assert!(mg.is_empty());
        assert_eq!(mg.total(), 2);
    }
}
