//! The Space-Saving algorithm of Metwally, Agrawal & El Abbadi (2005).
//!
//! Maintains `m` counters. A monitored item's counter is incremented in
//! place; an unmonitored item replaces the minimum counter, inheriting its
//! count (recorded as the new item's overestimation error). Guarantees:
//! for stream length `N`, every item with true count `> N/m` is monitored,
//! and `count - error ≤ true ≤ count` for monitored items.
//!
//! This backs the paper's "SS" frequent-features baseline (§7) and the
//! MacroBase-style heavy-hitters comparison in the streaming-explanation
//! experiment (Fig. 8).

use crate::indexed_heap::IndexedHeap;
use wmsketch_hashing::FastHashMap;

/// A monitored item: its counter and overestimation error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsEntry {
    /// Item identifier.
    pub item: u64,
    /// Counter value (an upper bound on the true count).
    pub count: f64,
    /// Overestimation error inherited at admission (`count − error` is a
    /// lower bound on the true count).
    pub error: f64,
}

/// Space-Saving summary over 64-bit items with `f64` counts.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    heap: IndexedHeap<u64>,
    errors: FastHashMap<u64, f64>,
    capacity: usize,
    total: f64,
}

impl SpaceSaving {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Space-Saving capacity must be nonzero");
        Self {
            heap: IndexedHeap::with_capacity(capacity),
            errors: FastHashMap::default(),
            capacity,
            total: 0.0,
        }
    }

    /// Number of counters.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently monitored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are monitored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total stream mass observed.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether `item` is currently monitored.
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        self.heap.contains(&item)
    }

    /// Observes `item` with weight `delta` (use `1.0` for counting).
    ///
    /// Returns the identifier of the item that was *evicted* to admit this
    /// one, if any — callers tracking auxiliary per-item state (e.g. the
    /// frequent-features classifier's weights) must drop state for evicted
    /// items.
    pub fn update(&mut self, item: u64, delta: f64) -> Option<u64> {
        debug_assert!(delta > 0.0, "Space-Saving updates must be positive");
        self.total += delta;
        if let Some(count) = self.heap.priority(&item) {
            self.heap.insert(item, count + delta);
            return None;
        }
        if self.heap.len() < self.capacity {
            self.heap.insert(item, delta);
            self.errors.insert(item, 0.0);
            return None;
        }
        // Replace the minimum counter; the newcomer inherits its count as
        // error.
        let (evicted, min_count) = self.heap.pop_min().expect("capacity > 0");
        self.errors.remove(&evicted);
        self.heap.insert(item, min_count + delta);
        self.errors.insert(item, min_count);
        Some(evicted)
    }

    /// The estimated count of `item` (its counter if monitored, otherwise
    /// the minimum counter — a valid upper bound for any unmonitored item).
    #[must_use]
    pub fn estimate(&self, item: u64) -> f64 {
        self.heap
            .priority(&item)
            .or_else(|| self.heap.peek_min().map(|(_, c)| c))
            .unwrap_or(0.0)
    }

    /// The guaranteed lower bound on `item`'s true count (0 if unmonitored).
    #[must_use]
    pub fn guaranteed(&self, item: u64) -> f64 {
        match (self.heap.priority(&item), self.errors.get(&item)) {
            (Some(c), Some(&e)) => c - e,
            _ => 0.0,
        }
    }

    /// All monitored entries, unordered.
    pub fn iter(&self) -> impl Iterator<Item = SsEntry> + '_ {
        self.heap.iter().map(|(item, count)| SsEntry {
            item,
            count,
            error: self.errors.get(&item).copied().unwrap_or(0.0),
        })
    }

    /// The `k` highest-count entries, sorted descending by count.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<SsEntry> {
        let mut all: Vec<SsEntry> = self.iter().collect();
        all.sort_by(|a, b| {
            b.count
                .partial_cmp(&a.count)
                .expect("NaN count")
                .then(a.item.cmp(&b.item))
        });
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            assert_eq!(ss.update(1, 1.0), None);
        }
        ss.update(2, 1.0);
        assert_eq!(ss.estimate(1), 5.0);
        assert_eq!(ss.guaranteed(1), 5.0);
        assert_eq!(ss.estimate(2), 1.0);
        assert_eq!(ss.len(), 2);
    }

    #[test]
    fn eviction_reports_displaced_item() {
        let mut ss = SpaceSaving::new(2);
        ss.update(1, 1.0);
        ss.update(2, 5.0);
        let evicted = ss.update(3, 1.0);
        assert_eq!(evicted, Some(1));
        assert!(!ss.contains(1));
        // Newcomer inherits min count 1 as error: counter 2, guaranteed 1.
        assert_eq!(ss.estimate(3), 2.0);
        assert_eq!(ss.guaranteed(3), 1.0);
    }

    #[test]
    fn never_underestimates() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(8);
        let mut ss = SpaceSaving::new(32);
        let mut truth = vec![0.0f64; 200];
        // Zipf-ish skew: low ids much more frequent.
        for _ in 0..20_000 {
            let r: f64 = rng.random();
            let k = ((200.0 * r * r * r) as u64).min(199);
            truth[k as usize] += 1.0;
            ss.update(k, 1.0);
        }
        for k in 0..200u64 {
            assert!(
                ss.estimate(k) + 1e-9 >= truth[k as usize].min(ss.estimate(k)),
                "estimate below truth for monitored item"
            );
            if ss.contains(k) {
                assert!(ss.estimate(k) >= truth[k as usize] - 1e-9);
                assert!(ss.guaranteed(k) <= truth[k as usize] + 1e-9);
            }
        }
    }

    #[test]
    fn heavy_items_always_monitored() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        let m = 50;
        let n = 10_000u32;
        let mut ss = SpaceSaving::new(m);
        let mut truth: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for _ in 0..n {
            // Item 0..4 get 10% each; the rest uniform over 1000 ids.
            let k = if rng.random::<f64>() < 0.5 {
                rng.random_range(0..5u64)
            } else {
                rng.random_range(5..1005u64)
            };
            *truth.entry(k).or_default() += 1;
            ss.update(k, 1.0);
        }
        // Guarantee: any item with count > N/m must be monitored.
        let threshold = f64::from(n) / m as f64;
        for (&k, &c) in &truth {
            if f64::from(c) > threshold {
                assert!(ss.contains(k), "heavy item {k} (count {c}) evicted");
            }
        }
    }

    #[test]
    fn error_bound_n_over_m() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(10);
        let m = 64;
        let mut ss = SpaceSaving::new(m);
        let mut truth: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let k = rng.random_range(0..500u64);
            *truth.entry(k).or_default() += 1.0;
            ss.update(k, 1.0);
        }
        let bound = ss.total() / m as f64;
        for e in ss.iter() {
            let t = truth.get(&e.item).copied().unwrap_or(0.0);
            assert!(e.count - t <= bound + 1e-9, "overestimate exceeds N/m");
            assert!(e.error <= bound + 1e-9);
        }
    }

    #[test]
    fn top_k_sorted() {
        let mut ss = SpaceSaving::new(8);
        for (item, n) in [(1u64, 5), (2, 9), (3, 2)] {
            for _ in 0..n {
                ss.update(item, 1.0);
            }
        }
        let top = ss.top_k(2);
        assert_eq!(top[0].item, 2);
        assert_eq!(top[1].item, 1);
    }
}
