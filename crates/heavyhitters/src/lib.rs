//! Heavy-hitter and top-K substrates.
//!
//! The paper's baselines and the AWM-Sketch's *active set* all need
//! efficiently-updatable ordered summaries:
//!
//! * [`IndexedHeap`] — a binary min-heap with a position map supporting
//!   `O(log n)` change-key and remove-by-key; the workhorse under
//!   everything else here.
//! * [`TopKWeights`] — "the heap" of Algorithms 2–4: the top-K features by
//!   absolute weight, with exact stored weights.
//! * [`SpaceSaving`] — the Metwally et al. Space-Saving algorithm backing
//!   the paper's "SS" frequent-features baseline and the MacroBase-style
//!   heavy-hitters explanation baseline (Fig. 8).
//! * [`MisraGries`] — the classic deterministic counter algorithm, an
//!   additional baseline for ablations.

#![warn(missing_docs)]

pub mod indexed_heap;
pub mod misragries;
pub mod spacesaving;
pub mod topk;

pub use indexed_heap::IndexedHeap;
pub use misragries::MisraGries;
pub use spacesaving::{SpaceSaving, SsEntry};
pub use topk::{Offer, TopKWeights, WeightEntry};
