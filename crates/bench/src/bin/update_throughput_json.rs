//! Update-throughput tracking bin.
//!
//! Measures WM-/AWM-Sketch update throughput at the paper's 8 KB Figure-7
//! configuration on an RCV1-like stream, for the retained naive three-pass
//! path (`update_naive`), the fused single-hash pipeline (`update` /
//! `update_batch`), the vectorized kernel pipeline (`WM_simd`/`AWM_simd`:
//! the same fused `update` with the host-default SIMD backend — the
//! naive/fused rows are pinned to the scalar backend so the pair isolates
//! the kernel speedup), the sharded pipeline (`ShardedLearner` at 1, 2,
//! 4, and 8 shards, merge included), and the end-to-end serve ingest
//! paths (`serve_ingest`: a loopback `wmsketch-serve` node — v6: its
//! default WM model behind a 2-shard **deferred-heap** pool on the
//! pipelined **event backend** — fed pipelined UPDATE frames, so
//! framing, syscalls, and decode are all inside the timed region;
//! `AWM_serve_ingest`: the same loopback wire but through the node's
//! **model registry** — an AWM model created via OP_CREATE and addressed
//! with model-id frames — so the registry indirection cost is measured,
//! not assumed; `serve_saturation`: many pipelined connections, one
//! node, aggregate throughput), and writes the results as JSON so the
//! perf trajectory can be tracked PR over PR.
//!
//! v7 adds the telemetry dimension: every serve row carries the node's
//! **own** per-frame UPDATE service-latency quantiles (`latency_ns`:
//! p50/p90/p99, scraped over the wire via the `METRICS` op — the
//! latency telemetry measuring the very passes the row timed), and the
//! `serve_ingest` row gains a `serve_ingest_notelemetry` twin measured
//! as interleaved A/B passes with the telemetry switch off
//! (`wmsketch_telemetry::set_enabled`), whose ratio is reported as
//! `speedup.telemetry_overhead` — the measured, not assumed, cost of
//! the instrumentation on the hot ingest path. In-process rows have no
//! service boundary to meter, so their `latency_ns` is `null`.
//!
//! v8 adds the memory-governor dimension: the `AWM_serve_ingest` row
//! drops its 1-shard worker pool for the **unsharded** registry path
//! (shards=0 — the fleet hosting mode, and the shape the v7 0.66×
//! registry gap pointed at), `serve_ingest` gains a governed twin
//! (`serve_ingest_governed`: the same node under a memory budget big
//! enough that nothing ever spills, measured as interleaved A/B passes
//! whose ratio is `speedup.governor_overhead` — the all-resident cost
//! of governor accounting on the hot path), and a `fleet` block records
//! the governed model-fleet workload (~10k AWM models under a budget
//! far below their hot sum, zipf traffic, spill/revive counters, hit
//! rate, p99 revival latency, and a bit-identity spot check against an
//! all-hot reference node — see `wmsketch_bench::fleet`).
//!
//! Usage: `update_throughput_json [OUTPUT_PATH]`
//! (default output: `BENCH_update_throughput.json` in the working
//! directory; see `crates/bench/README.md` for the schema).

use std::time::Instant;
use wmsketch_core::{
    sharded_awm, sharded_wm, AwmSketch, AwmSketchConfig, OnlineLearner, ShardedLearnerConfig,
    WmSketch, WmSketchConfig,
};
use wmsketch_datagen::SyntheticClassification;
use wmsketch_hashing::simd;
use wmsketch_learn::{Label, SparseVector};

const BUDGET: usize = 8 * 1024;
const STREAM_SEED: u64 = 7;
const STREAM_LEN: usize = 8192;
/// Wall-clock budget per measured variant, seconds. Emitted in the JSON
/// config block so the output is self-describing.
const MEASURE_SECS: f64 = 1.0;
/// Untimed passes before measurement (page in the stream, train the
/// branch predictors). Emitted in the JSON config block.
const WARMUP_PASSES: usize = 1;
/// Shard counts for the sharded-pipeline speedup curve.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Examples per UPDATE frame on the serve ingest path.
const SERVE_FRAME_EXAMPLES: usize = 1024;
/// Worker count of the loopback serve node's WM model. v6 serves the
/// default model through the deferred-heap sharded pipeline (the
/// single-node throughput configuration), so the wire path rides the
/// fastest learner the workspace has.
const SERVE_SHARDS: usize = 2;
/// Per-shard candidate-tracker capacity of the deferred-heap serve node.
const SERVE_CANDIDATES: usize = 128;
/// UPDATE frames each client keeps in flight (pipelining depth). 1 would
/// reproduce v5's blocking request/response cadence.
const SERVE_PIPELINE_WINDOW: usize = 8;
/// Concurrent client connections in the saturation row.
const SATURATION_CONNECTIONS: usize = 16;

struct Measurement {
    name: String,
    /// Worker count for sharded variants; 1 for the sequential paths.
    shards: usize,
    /// Concurrent client connections (saturation rows only).
    connections: Option<usize>,
    ns_per_update: f64,
    updates_per_sec: f64,
    updates_timed: u64,
    /// Serve rows only: the node's per-frame UPDATE service-latency
    /// quantiles (p50, p90, p99, ns), scraped via the METRICS op after
    /// the timed passes. `None` for in-process rows (no service
    /// boundary) and for the telemetry-off twin (nothing records).
    latency_ns: Option<(u64, u64, u64)>,
}

/// Times two variants of the same pipeline with **interleaved** passes —
/// one pass of `a`, one pass of `b`, repeating until both have at least
/// [`MEASURE_SECS`] of timed work. On a busy 1-CPU host, sequential
/// measurement lets slow drift (noisy neighbors, thermals) bias whichever
/// variant runs later; alternating passes exposes both variants to the
/// same drift so their *ratio* is unbiased. Used for the fused-vs-simd
/// pairs, whose ratio is the quantity the speedup block reports.
fn measure_ab<L>(
    a: (&str, Option<wmsketch_hashing::Backend>),
    b: (&str, Option<wmsketch_hashing::Backend>),
    data: &[(SparseVector, Label)],
    make: impl Fn() -> L,
    mut pass: impl FnMut(&mut L, &[(SparseVector, Label)]),
) -> (Measurement, Measurement) {
    let mut one_pass = |backend: Option<wmsketch_hashing::Backend>| {
        // `force_backend(None)` pins the calibrated default — the pin is
        // what keeps a stray override from leaking in either direction.
        let _pin = simd::force_backend(backend);
        let mut learner = make();
        let start = Instant::now();
        pass(&mut learner, data);
        start.elapsed().as_secs_f64()
    };
    for _ in 0..WARMUP_PASSES {
        let _ = one_pass(a.1);
        let _ = one_pass(b.1);
    }
    let (mut elapsed_a, mut elapsed_b) = (0.0f64, 0.0f64);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let (mut timed_a, mut timed_b) = (0u64, 0u64);
    while elapsed_a < MEASURE_SECS || elapsed_b < MEASURE_SECS {
        let t = one_pass(a.1);
        elapsed_a += t;
        best_a = best_a.min(t);
        timed_a += data.len() as u64;
        let t = one_pass(b.1);
        elapsed_b += t;
        best_b = best_b.min(t);
        timed_b += data.len() as u64;
    }
    // The paired rows report the *fastest* pass rather than the mean:
    // preemption on a shared host only ever adds time, so the minimum is
    // the noise-robust estimator of true per-update cost, and the pair's
    // ratio is what the speedup block reports.
    let finish = |name: &str, best: f64, timed: u64| {
        let ns_per_update = best * 1e9 / data.len() as f64;
        Measurement {
            name: name.to_string(),
            shards: 1,
            connections: None,
            ns_per_update,
            updates_per_sec: 1e9 / ns_per_update,
            updates_timed: timed,
            latency_ns: None,
        }
    };
    (finish(a.0, best_a, timed_a), finish(b.0, best_b, timed_b))
}

/// Times whole passes over the stream, rebuilding the learner each pass so
/// sketch state does not accumulate across passes.
///
/// v4 reports the **fastest** pass rather than the mean, for every row:
/// preemption on a shared host only ever adds time, so the minimum is the
/// noise-robust estimator of true per-update cost, and using one
/// estimator everywhere keeps every cross-row ratio in the speedup block
/// estimator-consistent. (v3 and earlier reported the mean; cross-version
/// deltas partly reflect that change — see the README.)
fn measure<L>(
    name: &str,
    shards: usize,
    data: &[(SparseVector, Label)],
    make: impl Fn() -> L,
    mut pass: impl FnMut(&mut L, &[(SparseVector, Label)]),
) -> Measurement {
    for _ in 0..WARMUP_PASSES {
        let mut learner = make();
        pass(&mut learner, data);
    }
    let mut timed = 0u64;
    let mut elapsed = 0.0f64;
    let mut best = f64::INFINITY;
    while elapsed < MEASURE_SECS {
        let mut learner = make();
        let start = Instant::now();
        pass(&mut learner, data);
        let t = start.elapsed().as_secs_f64();
        elapsed += t;
        best = best.min(t);
        timed += data.len() as u64;
    }
    let ns_per_update = best * 1e9 / data.len() as f64;
    Measurement {
        name: name.to_string(),
        shards,
        connections: None,
        ns_per_update,
        updates_per_sec: 1e9 / ns_per_update,
        updates_timed: timed,
        latency_ns: None,
    }
}

/// Scrapes the loopback node's per-frame UPDATE service-latency
/// quantiles for `model` via the METRICS op — the v7 `latency_ns` row
/// field. Returns `None` when telemetry is off (nothing recorded) or
/// the histogram is empty.
fn scrape_update_latency(
    client: &mut wmsketch_serve::ServeClient,
    model: &str,
) -> Option<(u64, u64, u64)> {
    let report = client.metrics().ok()?;
    let labels = [("model", model), ("op", "update")];
    let q = |name: &str| report.value(name, &labels);
    Some((
        q("op_latency_ns_p50")? as u64,
        q("op_latency_ns_p90")? as u64,
        q("op_latency_ns_p99")? as u64,
    ))
}

/// The loopback serve node every serve row runs against: the default WM
/// model behind a [`SERVE_SHARDS`]-worker **deferred-heap** pool, on the
/// event backend (pinned, so the row measures the readiness-driven loop
/// regardless of env; off-Linux the pin clamps to the threaded backend
/// and the row reflects that platform's real serving path).
fn serve_node_config(wm_cfg: WmSketchConfig) -> wmsketch_serve::ServeConfig {
    wmsketch_serve::ServeConfig::new(wm_cfg, SERVE_SHARDS)
        .deferred_heap(SERVE_CANDIDATES)
        .backend(wmsketch_serve::ServeBackend::Event)
}

/// End-to-end loopback ingest through `wmsketch-serve`: one node on an
/// ephemeral port, **pipelined** UPDATE frames of [`SERVE_FRAME_EXAMPLES`]
/// examples with [`SERVE_PIPELINE_WINDOW`] in flight, model RESET between
/// passes (mirroring `measure`'s rebuild-per-pass), with framing,
/// syscalls, and payload decode all inside the timed region.
///
/// With `registry_template = None` the frames target the node's default
/// WM model (v6: a deferred-heap shard pool — the node's throughput
/// configuration); with a template snapshot the bench registers a model
/// via OP_CREATE and drives ingest through the registry (v5's
/// `AWM_serve_ingest` row), so the cost of the model-id indirection and
/// registry dispatch is measured, not assumed.
fn measure_serve_ingest(
    name: &str,
    wm_cfg: WmSketchConfig,
    registry_template: Option<(&[u8], usize)>,
    data: &[(SparseVector, Label)],
) -> Measurement {
    use wmsketch_serve::{ServeClient, WmServer};
    let server = WmServer::bind("127.0.0.1:0", serve_node_config(wm_cfg))
        .expect("bind loopback server")
        .spawn();
    let mut client = ServeClient::connect(server.addr()).expect("connect loopback server");
    let mut row_shards = SERVE_SHARDS;
    let mut model_name = "default";
    if let Some((template, shards)) = registry_template {
        let id = client
            .create_model("bench", template, shards as u32)
            .expect("create registry model");
        client.set_model(id).expect("address registry model");
        row_shards = shards;
        model_name = "bench";
    }
    let pass = |client: &mut ServeClient| {
        client.reset().expect("reset serve node");
        client
            .update_many(data, SERVE_FRAME_EXAMPLES, SERVE_PIPELINE_WINDOW)
            .expect("serve ingest");
    };
    for _ in 0..WARMUP_PASSES {
        pass(&mut client);
    }
    let mut timed = 0u64;
    let mut elapsed = 0.0f64;
    let mut best = f64::INFINITY;
    while elapsed < MEASURE_SECS {
        client.reset().expect("reset serve node");
        let start = Instant::now();
        client
            .update_many(data, SERVE_FRAME_EXAMPLES, SERVE_PIPELINE_WINDOW)
            .expect("serve ingest");
        let t = start.elapsed().as_secs_f64();
        elapsed += t;
        best = best.min(t);
        timed += data.len() as u64;
    }
    let latency_ns = scrape_update_latency(&mut client, model_name);
    server.shutdown();
    // Fastest pass, like `measure` — one estimator for every row.
    let ns_per_update = best * 1e9 / data.len() as f64;
    Measurement {
        name: name.to_string(),
        shards: row_shards,
        connections: None,
        ns_per_update,
        updates_per_sec: 1e9 / ns_per_update,
        updates_timed: timed,
        latency_ns,
    }
}

/// The `serve_ingest` row and its telemetry-off twin, measured as
/// **interleaved** A/B passes over the same node (the `measure_ab`
/// discipline, for the same reason: the pair's *ratio* is the reported
/// `telemetry_overhead`, so both variants must see the same drift).
/// The node lives in this process, so the per-pass toggle is
/// `wmsketch_telemetry::set_enabled`; the switch is restored to its
/// prior state before returning. Returns `(on, off, overhead)` with
/// `overhead = best_on / best_off` (1.00 = free, 1.02 = 2% tax).
fn measure_serve_telemetry_ab(
    wm_cfg: WmSketchConfig,
    data: &[(SparseVector, Label)],
) -> (Measurement, Measurement, f64) {
    use wmsketch_serve::{ServeClient, WmServer};
    let was_enabled = wmsketch_telemetry::enabled();
    let server = WmServer::bind("127.0.0.1:0", serve_node_config(wm_cfg))
        .expect("bind loopback server")
        .spawn();
    let mut client = ServeClient::connect(server.addr()).expect("connect loopback server");
    let one_pass = |client: &mut ServeClient, on: bool| {
        wmsketch_telemetry::set_enabled(on);
        client.reset().expect("reset serve node");
        let start = Instant::now();
        client
            .update_many(data, SERVE_FRAME_EXAMPLES, SERVE_PIPELINE_WINDOW)
            .expect("serve ingest");
        start.elapsed().as_secs_f64()
    };
    for _ in 0..WARMUP_PASSES {
        let _ = one_pass(&mut client, true);
        let _ = one_pass(&mut client, false);
    }
    let (mut elapsed_on, mut elapsed_off) = (0.0f64, 0.0f64);
    let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
    let (mut timed_on, mut timed_off) = (0u64, 0u64);
    while elapsed_on < MEASURE_SECS || elapsed_off < MEASURE_SECS {
        let t = one_pass(&mut client, true);
        elapsed_on += t;
        best_on = best_on.min(t);
        timed_on += data.len() as u64;
        let t = one_pass(&mut client, false);
        elapsed_off += t;
        best_off = best_off.min(t);
        timed_off += data.len() as u64;
    }
    // Scrape with the switch on; only the on-passes recorded, so the
    // quantiles describe exactly the instrumented variant's frames.
    wmsketch_telemetry::set_enabled(true);
    let latency_ns = scrape_update_latency(&mut client, "default");
    wmsketch_telemetry::set_enabled(was_enabled);
    server.shutdown();
    let row = |name: &str, best: f64, timed: u64, latency_ns: Option<(u64, u64, u64)>| {
        let ns_per_update = best * 1e9 / data.len() as f64;
        Measurement {
            name: name.to_string(),
            shards: SERVE_SHARDS,
            connections: None,
            ns_per_update,
            updates_per_sec: 1e9 / ns_per_update,
            updates_timed: timed,
            latency_ns,
        }
    };
    (
        row("serve_ingest", best_on, timed_on, latency_ns),
        row("serve_ingest_notelemetry", best_off, timed_off, None),
        best_on / best_off,
    )
}

/// The `serve_ingest` row against its **governed** twin: the identical
/// node configuration plus a memory governor whose budget (1 GiB) is
/// far above the node's footprint, so nothing ever spills and the pair
/// isolates exactly the governor's all-resident hot-path cost (the LRU
/// tick stamp and accounting loads on every frame). Interleaved passes
/// across the two nodes, same discipline and rationale as
/// [`measure_serve_telemetry_ab`]. Returns `(governed_row, overhead)`
/// with `overhead = best_governed / best_ungoverned` against a
/// freshly measured ungoverned baseline pass set.
fn measure_serve_governor_ab(
    wm_cfg: WmSketchConfig,
    data: &[(SparseVector, Label)],
) -> (Measurement, f64) {
    use wmsketch_serve::{ServeClient, WmServer};
    let mut dir = std::env::temp_dir();
    dir.push(format!("wmsketch_bench_governed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plain = WmServer::bind("127.0.0.1:0", serve_node_config(wm_cfg))
        .expect("bind ungoverned server")
        .spawn();
    let governed = WmServer::bind(
        "127.0.0.1:0",
        serve_node_config(wm_cfg)
            .data_dir(&dir)
            .memory_budget_bytes(1 << 30),
    )
    .expect("bind governed server")
    .spawn();
    let mut plain_client = ServeClient::connect(plain.addr()).expect("connect ungoverned");
    let mut gov_client = ServeClient::connect(governed.addr()).expect("connect governed");
    let one_pass = |client: &mut ServeClient| {
        client.reset().expect("reset serve node");
        let start = Instant::now();
        client
            .update_many(data, SERVE_FRAME_EXAMPLES, SERVE_PIPELINE_WINDOW)
            .expect("serve ingest");
        start.elapsed().as_secs_f64()
    };
    for _ in 0..WARMUP_PASSES {
        let _ = one_pass(&mut gov_client);
        let _ = one_pass(&mut plain_client);
    }
    let (mut elapsed_gov, mut elapsed_plain) = (0.0f64, 0.0f64);
    let (mut best_gov, mut best_plain) = (f64::INFINITY, f64::INFINITY);
    let mut timed_gov = 0u64;
    while elapsed_gov < MEASURE_SECS || elapsed_plain < MEASURE_SECS {
        let t = one_pass(&mut gov_client);
        elapsed_gov += t;
        best_gov = best_gov.min(t);
        timed_gov += data.len() as u64;
        let t = one_pass(&mut plain_client);
        elapsed_plain += t;
        best_plain = best_plain.min(t);
    }
    let latency_ns = scrape_update_latency(&mut gov_client, "default");
    plain.shutdown();
    governed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let ns_per_update = best_gov * 1e9 / data.len() as f64;
    (
        Measurement {
            name: "serve_ingest_governed".to_string(),
            shards: SERVE_SHARDS,
            connections: None,
            ns_per_update,
            updates_per_sec: 1e9 / ns_per_update,
            updates_timed: timed_gov,
            latency_ns,
        },
        best_gov / best_plain,
    )
}

/// Many-clients/one-server saturation: [`SATURATION_CONNECTIONS`]
/// concurrent connections each pipeline the full stream into the node's
/// default model, and the row reports **aggregate** updates/sec — the
/// event backend's cross-connection coalescing (one learner-lock
/// acquisition per queued run of frames) is exactly what this row
/// exercises. `ns_per_update` is wall time per aggregate update.
fn measure_serve_saturation(
    name: &str,
    wm_cfg: WmSketchConfig,
    data: &[(SparseVector, Label)],
) -> Measurement {
    use wmsketch_serve::{ServeClient, WmServer};
    let server = WmServer::bind("127.0.0.1:0", serve_node_config(wm_cfg))
        .expect("bind loopback server")
        .spawn();
    let mut clients: Vec<ServeClient> = (0..SATURATION_CONNECTIONS)
        .map(|_| ServeClient::connect(server.addr()).expect("connect saturation client"))
        .collect();
    let mut control = ServeClient::connect(server.addr()).expect("connect control client");
    let aggregate = (data.len() * SATURATION_CONNECTIONS) as u64;
    let mut pass = |clients: &mut Vec<ServeClient>| {
        control.reset().expect("reset serve node");
        let start = Instant::now();
        std::thread::scope(|s| {
            for c in clients.iter_mut() {
                s.spawn(move || {
                    c.update_many(data, SERVE_FRAME_EXAMPLES, SERVE_PIPELINE_WINDOW)
                        .expect("saturation ingest");
                });
            }
        });
        start.elapsed().as_secs_f64()
    };
    for _ in 0..WARMUP_PASSES {
        let _ = pass(&mut clients);
    }
    let mut timed = 0u64;
    let mut elapsed = 0.0f64;
    let mut best = f64::INFINITY;
    while elapsed < MEASURE_SECS {
        let t = pass(&mut clients);
        elapsed += t;
        best = best.min(t);
        timed += aggregate;
    }
    let latency_ns = scrape_update_latency(&mut control, "default");
    server.shutdown();
    let ns_per_update = best * 1e9 / aggregate as f64;
    Measurement {
        name: name.to_string(),
        shards: SERVE_SHARDS,
        connections: Some(SATURATION_CONNECTIONS),
        ns_per_update,
        updates_per_sec: 1e9 / ns_per_update,
        updates_timed: timed,
        latency_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_update_throughput.json".to_string());
    // Fail on an unwritable output path *before* spending seconds measuring.
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            eprintln!(
                "error: output directory {} does not exist",
                parent.display()
            );
            std::process::exit(2);
        }
    }

    let mut generator = SyntheticClassification::rcv1_like(STREAM_SEED);
    let data: Vec<(SparseVector, Label)> = generator.take(STREAM_LEN);
    let nnz_total: usize = data.iter().map(|(x, _)| x.nnz()).sum();
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let wm_cfg = WmSketchConfig::with_budget_bytes(BUDGET);
    let awm_cfg = AwmSketchConfig::with_budget_bytes(BUDGET);
    eprintln!(
        "8 KB Figure-7 config: WM {}x{} heap {}, AWM |S|={} width {}, stream {} examples (avg nnz {:.1}), {host_cpus} host cpu(s)",
        wm_cfg.width,
        wm_cfg.depth,
        wm_cfg.heap_capacity,
        awm_cfg.heap_capacity,
        awm_cfg.width,
        data.len(),
        nnz_total as f64 / data.len() as f64,
    );

    let avx2 = simd::avx2_supported();
    let coord_backend = simd::active_backend();
    let hash_backend = simd::active_hash_backend();

    let mut results = Vec::new();
    {
        // The naive and fused rows are pinned to the scalar kernel
        // backend: they are the historical baselines (v3 and earlier were
        // measured before the kernel layer existed), and pinning them
        // makes `WM_simd` vs `WM_fused` isolate exactly the vectorized
        // kernels.
        let _scalar = simd::force_backend(Some(simd::Backend::Scalar));
        results.push(measure(
            "WM_naive",
            1,
            &data,
            || WmSketch::new(wm_cfg),
            |m, d| {
                for (x, y) in d {
                    m.update_naive(x, *y);
                }
            },
        ));
        results.push(measure(
            "WM_fused_batch",
            1,
            &data,
            || WmSketch::new(wm_cfg),
            |m, d| {
                m.update_batch(d);
            },
        ));
    }
    // WM_fused (scalar kernels) vs WM_simd (the calibrated host-default
    // backend — identical code on hosts where calibration or missing AVX2
    // resolves to scalar; compare config.cpu_features when reading
    // cross-host files). Interleaved so the pair's ratio is drift-free.
    {
        let (fused, vectored) = measure_ab(
            ("WM_fused", Some(simd::Backend::Scalar)),
            ("WM_simd", None),
            &data,
            || WmSketch::new(wm_cfg),
            |m, d| {
                for (x, y) in d {
                    m.update(x, *y);
                }
            },
        );
        // Keep the historical row order: WM_fused before WM_fused_batch.
        results.insert(1, fused);
        results.push(vectored);
    }
    // Sharded pipeline: one update_batch over the whole stream plus the
    // final merge into the queryable root — merge cost is inside the
    // timed region. Runs the host-default backend, like production.
    for shards in SHARD_COUNTS {
        results.push(measure(
            &format!("WM_sharded_{shards}"),
            shards,
            &data,
            || sharded_wm(wm_cfg, ShardedLearnerConfig::new(shards)),
            |m, d| {
                m.update_batch(d);
                m.sync();
            },
        ));
    }
    {
        let _scalar = simd::force_backend(Some(simd::Backend::Scalar));
        results.push(measure(
            "AWM_naive",
            1,
            &data,
            || AwmSketch::new(awm_cfg),
            |m, d| {
                for (x, y) in d {
                    m.update_naive(x, *y);
                }
            },
        ));
        results.push(measure(
            "AWM_fused_batch",
            1,
            &data,
            || AwmSketch::new(awm_cfg),
            |m, d| {
                m.update_batch(d);
            },
        ));
    }
    {
        let (fused, vectored) = measure_ab(
            ("AWM_fused", Some(simd::Backend::Scalar)),
            ("AWM_simd", None),
            &data,
            || AwmSketch::new(awm_cfg),
            |m, d| {
                for (x, y) in d {
                    m.update(x, *y);
                }
            },
        );
        let at = results.len() - 1;
        results.insert(at, fused);
        results.push(vectored);
    }
    results.push(measure(
        "AWM_sharded_4",
        4,
        &data,
        || sharded_awm(awm_cfg, ShardedLearnerConfig::new(4)),
        |m, d| {
            m.update_batch(d);
            m.sync();
        },
    ));
    // v6: the serve node's default WM model runs the deferred-heap
    // 2-shard pipeline on the event backend, and the client pipelines
    // its frames — the served path now rides the workspace's fastest
    // learner instead of paying the wire on top of the slowest one.
    // v7: measured as an interleaved A/B pair against the same node with
    // the telemetry switch off, so the instrumentation tax is a number
    // in the file rather than a claim in a comment.
    let telemetry_overhead = {
        let (on, off, overhead) = measure_serve_telemetry_ab(wm_cfg, &data);
        results.push(on);
        results.push(off);
        overhead
    };
    // v8: the governed twin of serve_ingest — same node shape plus a
    // never-binding 1 GiB memory budget, so the pair's ratio prices the
    // governor's per-frame accounting with everything resident.
    let governor_overhead = {
        let (governed, overhead) = measure_serve_governor_ab(wm_cfg, &data);
        results.push(governed);
        overhead
    };
    // v5: the same loopback ingest through the model registry — an AWM
    // model created via OP_CREATE and addressed with v2 (model-id)
    // frames — so the registry indirection cost shows up as a measured
    // row next to the default-model path. v8: the model is **unsharded**
    // (shards=0, the fleet hosting mode): v7's 1-shard worker-heap pool
    // paid a full cross-thread shard handoff per frame for zero
    // parallelism, which is where most of its 0.66× gap against the
    // in-process fused pipeline lived; shards=0 executes on the direct
    // learner under the slot lock, leaving only wire framing and
    // registry dispatch in the gap.
    {
        use wmsketch_core::SnapshotCodec;
        let template = AwmSketch::new(awm_cfg).to_snapshot_bytes();
        results.push(measure_serve_ingest(
            "AWM_serve_ingest",
            wm_cfg,
            Some((&template, 0)),
            &data,
        ));
    }
    // v6: many clients, one node — aggregate throughput with
    // SATURATION_CONNECTIONS pipelined connections coalescing into the
    // default model.
    results.push(measure_serve_saturation("serve_saturation", wm_cfg, &data));
    // v8: the governed model-fleet workload (scale via
    // WMSKETCH_FLEET_MODELS / _REQUESTS / _BACKEND; default 10k models,
    // budget 25% of the fleet's hot sum).
    eprintln!("running fleet workload (WMSKETCH_FLEET_MODELS to rescale)...");
    let fleet = wmsketch_bench::fleet::run_fleet(&wmsketch_bench::fleet::FleetConfig::from_env());

    let get = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .expect("measured variant")
            .ns_per_update
    };
    let wm_speedup = get("WM_naive") / get("WM_fused");
    let awm_speedup = get("AWM_naive") / get("AWM_fused");
    // Kernel-layer speedup: the same fused pipeline, scalar backend vs the
    // host-default (SIMD) backend.
    let wm_simd_speedup = get("WM_fused") / get("WM_simd");
    let awm_simd_speedup = get("AWM_fused") / get("AWM_simd");
    let awm_sharded_speedup = get("AWM_fused") / get("AWM_sharded_4");
    // The served WM path vs the in-process fused pipeline. v6 serves the
    // deferred-heap shard pool over the pipelined event backend, so this
    // is ≥ 1.0 when the served fast path beats in-process fused updates
    // despite paying framing, syscalls, and decode on the wire.
    let serve_over_fused = get("WM_fused") / get("serve_ingest");
    // Aggregate saturation throughput vs fused, same normalization.
    let saturation_over_fused = get("WM_fused") / get("serve_saturation");
    // Registry-path overhead for an AWM model (wire + model-id dispatch
    // vs the in-process fused AWM pipeline).
    let awm_serve_over_fused = get("AWM_fused") / get("AWM_serve_ingest");
    // The sharded curve is normalized to the 1-shard fused baseline
    // (`WM_fused`); `WM_sharded_1` is the same sequential pipeline through
    // the bypass path and should sit within noise of 1.0x.
    let wm_curve: Vec<(usize, f64)> = SHARD_COUNTS
        .iter()
        .map(|&s| (s, get("WM_fused") / get(&format!("WM_sharded_{s}"))))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"wmsketch-update-throughput/v8\",\n");
    json.push_str("  \"config\": {\n");
    json.push_str(&format!("    \"budget_bytes\": {BUDGET},\n"));
    // v4: record the host's relevant CPU features and the backend each
    // calibrated kernel class dispatched to, so cross-host result files
    // are comparable (a scalar-backend WM_simd row is just WM_fused
    // again).
    json.push_str(&format!(
        "    \"cpu_features\": {{\"avx2\": {avx2}, \"coord_backend\": \"{}\", \"hash_backend\": \"{}\"}},\n",
        coord_backend.name(),
        hash_backend.name()
    ));
    json.push_str(&format!(
        "    \"wm\": {{\"width\": {}, \"depth\": {}, \"heap_capacity\": {}}},\n",
        wm_cfg.width, wm_cfg.depth, wm_cfg.heap_capacity
    ));
    json.push_str(&format!(
        "    \"awm\": {{\"width\": {}, \"depth\": {}, \"heap_capacity\": {}}},\n",
        awm_cfg.width, awm_cfg.depth, awm_cfg.heap_capacity
    ));
    json.push_str(&format!(
        "    \"stream\": {{\"generator\": \"rcv1_like\", \"seed\": {STREAM_SEED}, \"examples\": {}, \"avg_nnz\": {:.2}}},\n",
        data.len(),
        nnz_total as f64 / data.len() as f64
    ));
    json.push_str(&format!(
        "    \"measurement\": {{\"warmup_passes\": {WARMUP_PASSES}, \"measure_secs\": {MEASURE_SECS:.1}, \"host_cpus\": {host_cpus}}},\n"
    ));
    json.push_str(&format!(
        "    \"shard_counts\": [{}],\n",
        SHARD_COUNTS.map(|s| s.to_string()).join(", ")
    ));
    json.push_str(&format!(
        "    \"serve\": {{\"shards\": {SERVE_SHARDS}, \"wm_mode\": \"deferred_heap\", \"candidates_per_shard\": {SERVE_CANDIDATES}, \"backend\": \"event\", \"frame_examples\": {SERVE_FRAME_EXAMPLES}, \"pipeline_window\": {SERVE_PIPELINE_WINDOW}, \"saturation_connections\": {SATURATION_CONNECTIONS}, \"transport\": \"tcp-loopback\", \"registry_variant\": \"AWM_serve_ingest\"}}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"results\": [\n");
    for (idx, m) in results.iter().enumerate() {
        let comma = if idx + 1 < results.len() { "," } else { "" };
        // v3: every row carries host_cpus so cross-host result files can
        // be compared label-by-label (thread-pool and loopback numbers
        // are meaningless without the core count they ran on).
        // v6: saturation rows additionally carry their concurrent
        // connection count (aggregate rows are meaningless without it).
        let connections = m
            .connections
            .map_or(String::new(), |n| format!("\"connections\": {n}, "));
        // v7: serve rows carry the node's per-frame UPDATE service-latency
        // quantiles, scraped from the node's own histograms; rows with no
        // service boundary carry null.
        let latency = m.latency_ns.map_or("null".to_string(), |(p50, p90, p99)| {
            format!("{{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}}")
        });
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, {connections}\"host_cpus\": {host_cpus}, \"ns_per_update\": {:.1}, \"updates_per_sec\": {:.0}, \"updates_timed\": {}, \"latency_ns\": {latency}}}{comma}\n",
            m.name, m.shards, m.ns_per_update, m.updates_per_sec, m.updates_timed
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup\": {\n");
    json.push_str(&format!(
        "    \"wm_fused_over_naive\": {wm_speedup:.2},\n    \"awm_fused_over_naive\": {awm_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "    \"wm_simd_over_fused\": {wm_simd_speedup:.2},\n    \"awm_simd_over_fused\": {awm_simd_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "    \"wm_sharded_over_fused\": {{{}}},\n",
        wm_curve
            .iter()
            .map(|(s, x)| format!("\"{s}\": {x:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "    \"awm_sharded4_over_fused\": {awm_sharded_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "    \"serve_ingest_over_fused\": {serve_over_fused:.2},\n"
    ));
    json.push_str(&format!(
        "    \"serve_saturation_over_fused\": {saturation_over_fused:.2},\n"
    ));
    json.push_str(&format!(
        "    \"awm_serve_ingest_over_fused\": {awm_serve_over_fused:.2},\n"
    ));
    // The measured instrumentation tax on the hot ingest path: fastest
    // telemetry-on pass over fastest telemetry-off pass (interleaved).
    json.push_str(&format!(
        "    \"telemetry_overhead\": {telemetry_overhead:.4},\n"
    ));
    // The measured all-resident governor tax on the same path: fastest
    // governed pass over fastest ungoverned pass (interleaved nodes).
    json.push_str(&format!(
        "    \"governor_overhead\": {governor_overhead:.4}\n"
    ));
    json.push_str("  },\n");
    // v8: the governed model-fleet workload's own block (budget-bound
    // hosting, not per-update throughput — see crates/bench/README.md).
    json.push_str(&format!("  \"fleet\": {}\n", fleet.to_json("  ")));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    for m in &results {
        eprintln!(
            "{:<16} {:>9.1} ns/update  {:>11.0} updates/s",
            m.name, m.ns_per_update, m.updates_per_sec
        );
    }
    eprintln!("WM fused over naive: {wm_speedup:.2}x; AWM: {awm_speedup:.2}x");
    eprintln!(
        "WM simd over fused: {wm_simd_speedup:.2}x; AWM: {awm_simd_speedup:.2}x (coord backend {}, hash backend {}, avx2 {avx2})",
        coord_backend.name(),
        hash_backend.name()
    );
    for (s, x) in &wm_curve {
        eprintln!("WM sharded x{s} over fused: {x:.2}x");
    }
    eprintln!("AWM sharded x4 over fused: {awm_sharded_speedup:.2}x");
    eprintln!("serve ingest over fused (loopback, {host_cpus} cpu): {serve_over_fused:.2}x");
    eprintln!(
        "serve saturation over fused ({SATURATION_CONNECTIONS} connections, aggregate): {saturation_over_fused:.2}x"
    );
    eprintln!("AWM serve ingest over fused (registry path, unsharded): {awm_serve_over_fused:.2}x");
    eprintln!("telemetry overhead on serve_ingest (on/off, interleaved): {telemetry_overhead:.4}x");
    eprintln!(
        "governor overhead on serve_ingest (governed/ungoverned, all-resident, interleaved): {governor_overhead:.4}x"
    );
    eprintln!(
        "fleet: {} models, budget {:.0}% of hot sum, hit rate {:.3}, {} revivals (p99 {} ns), bit_identical={}",
        fleet.models,
        fleet.budget_fraction * 100.0,
        fleet.hit_rate,
        fleet.revivals,
        fleet
            .p99_revival_ns
            .map_or("n/a".to_string(), |v| v.to_string()),
        fleet.bit_identical,
    );
    if let Some((p50, p90, p99)) = results
        .iter()
        .find(|m| m.name == "serve_ingest")
        .and_then(|m| m.latency_ns)
    {
        eprintln!("serve_ingest UPDATE service latency: p50 {p50} ns, p90 {p90} ns, p99 {p99} ns");
    }
    eprintln!("wrote {out_path}");
}
