//! Standalone driver for the governed model-fleet workload (the same
//! harness the tracking bin embeds as the BENCH schema-v8 `fleet`
//! block): ~10k small AWM models on one governed `wmsketch-serve` node
//! under a budget far below the fleet's hot sum, zipf update traffic,
//! and a byte-for-byte spot check against an all-hot reference node.
//!
//! Scale knobs (all env): `WMSKETCH_FLEET_MODELS` (default 10000),
//! `WMSKETCH_FLEET_REQUESTS` (default 3× models),
//! `WMSKETCH_FLEET_BACKEND` (`threaded` | `event`, default event).
//!
//! Usage: `model_fleet [OUTPUT_PATH]` — writes the `fleet` JSON object
//! to OUTPUT_PATH when given, always prints it to stdout. Exits
//! nonzero when a spot check diverges from the reference (the revival
//! path must be bit-exact) or when the budget forced no revival at all
//! (the workload must actually exercise the governor).

use wmsketch_bench::fleet::{FleetConfig, FleetReport};

fn main() {
    let cfg = FleetConfig::from_env();
    eprintln!(
        "model_fleet: {} models, {} requests ({} updates each, zipf s={}), {:?} backend, budget {}% of hot sum",
        cfg.models,
        if cfg.requests == 0 { cfg.models * 3 } else { cfg.requests },
        cfg.updates_per_request,
        cfg.zipf_s,
        cfg.backend,
        (cfg.budget_fraction * 100.0) as u32,
    );
    let report: FleetReport = wmsketch_bench::fleet::run_fleet(&cfg);
    let json = format!("{}\n", report.to_json(""));
    print!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &json).expect("write fleet JSON");
        eprintln!("wrote {path}");
    }
    eprintln!(
        "fleet: {}/{} resident/spilled, {} evictions, {} revivals, hit rate {:.3}, p99 revival {} ns, bit_identical={}",
        report.resident_models,
        report.spilled_models,
        report.evictions,
        report.revivals,
        report.hit_rate,
        report
            .p99_revival_ns
            .map_or("n/a".to_string(), |v| v.to_string()),
        report.bit_identical,
    );
    if !report.bit_identical {
        eprintln!("error: a spilled-and-revived model diverged from its all-hot twin");
        std::process::exit(1);
    }
    if report.revivals == 0 {
        eprintln!("error: the workload never revived a model — the budget did not bite");
        std::process::exit(1);
    }
}
