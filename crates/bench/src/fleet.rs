//! The model-fleet harness behind the `model_fleet` bench bin and the
//! tracking bin's `fleet` block (BENCH schema v8).
//!
//! One governed `wmsketch-serve` node hosts a fleet of small unsharded
//! AWM models under a memory budget far below the sum of their hot
//! sizes, and zipf-distributed update traffic drives the governor's
//! spill/revive machinery. A second, effectively-unbounded node (the
//! **all-hot reference**) receives byte-for-byte identical traffic, and
//! the harness spot-checks that spilled-and-revived models answer with
//! snapshots bit-identical to their never-evicted twins — the paper's
//! space–accuracy story at fleet scale: the budget bounds memory, the
//! revival path keeps answers exact.

use std::time::Instant;

use rand::prelude::*;
use wmsketch_core::{AwmSketch, AwmSketchConfig, SnapshotCodec, WmSketchConfig};
use wmsketch_datagen::zipf::Zipf;
use wmsketch_learn::{Label, SparseVector};
use wmsketch_serve::{ServeBackend, ServeClient, ServeConfig, ServerHandle, WmServer};

/// Fleet workload shape. [`FleetConfig::from_env`] reads the scale
/// knobs, so CI can smoke the same harness at reduced size.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Hosted models (`WMSKETCH_FLEET_MODELS`, default 10 000).
    pub models: usize,
    /// Zipf-addressed update requests (`WMSKETCH_FLEET_REQUESTS`,
    /// default `3 × models`).
    pub requests: usize,
    /// Labelled examples per update request.
    pub updates_per_request: usize,
    /// Zipf skew of the traffic's model choice.
    pub zipf_s: f64,
    /// Memory budget as a fraction of the fleet's summed hot size.
    pub budget_fraction: f64,
    /// Transport backend of both nodes
    /// (`WMSKETCH_FLEET_BACKEND=threaded|event`, default event).
    pub backend: ServeBackend,
    /// Models whose final snapshots are compared byte-for-byte against
    /// the all-hot reference node (spread across the zipf rank range,
    /// so both always-hot and spilled-and-revived models are covered).
    pub spot_checks: usize,
    /// Traffic RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            models: 10_000,
            requests: 0, // 0 = 3 × models, resolved in run_fleet
            updates_per_request: 4,
            zipf_s: 1.1,
            budget_fraction: 0.25,
            backend: ServeBackend::Event,
            spot_checks: 32,
            seed: 42,
        }
    }
}

impl FleetConfig {
    /// The default shape with `WMSKETCH_FLEET_MODELS`,
    /// `WMSKETCH_FLEET_REQUESTS`, and `WMSKETCH_FLEET_BACKEND` applied.
    pub fn from_env() -> Self {
        let mut cfg = FleetConfig::default();
        if let Some(n) = env_usize("WMSKETCH_FLEET_MODELS") {
            cfg.models = n.max(1);
        }
        if let Some(n) = env_usize("WMSKETCH_FLEET_REQUESTS") {
            cfg.requests = n;
        }
        if let Ok(b) = std::env::var("WMSKETCH_FLEET_BACKEND") {
            match b.as_str() {
                "threaded" => cfg.backend = ServeBackend::Threaded,
                "event" => cfg.backend = ServeBackend::Event,
                other => panic!("WMSKETCH_FLEET_BACKEND must be threaded|event, got {other:?}"),
            }
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{key} must be an integer, got {v:?}"))
    })
}

/// What one fleet run measured; serialized as the BENCH `fleet` block.
#[derive(Debug)]
pub struct FleetReport {
    /// Hosted models.
    pub models: usize,
    /// Update requests driven through the governed node.
    pub requests: usize,
    /// Labelled examples per request.
    pub updates_per_request: usize,
    /// Zipf skew of the traffic.
    pub zipf_s: f64,
    /// Sum of every model's hot resident footprint (learner bytes).
    pub hot_sum_bytes: u64,
    /// The governed node's budget.
    pub budget_bytes: u64,
    /// `budget_bytes / hot_sum_bytes`.
    pub budget_fraction: f64,
    /// Resident models at end of traffic.
    pub resident_models: u32,
    /// Spilled models at end of traffic.
    pub spilled_models: u32,
    /// Governor evictions over the whole run.
    pub evictions: u64,
    /// Governor revivals over the whole run.
    pub revivals: u64,
    /// Fraction of traffic requests served without a revival.
    pub hit_rate: f64,
    /// p99 revival latency in ns (None when nothing revived during
    /// traffic).
    pub p99_revival_ns: Option<u64>,
    /// Whether every spot-checked snapshot matched the all-hot
    /// reference byte-for-byte.
    pub bit_identical: bool,
    /// Snapshots compared for `bit_identical`.
    pub spot_checks: usize,
    /// Transport backend label ("threaded" | "event").
    pub backend: &'static str,
    /// Wall-clock seconds registering the fleet (both nodes).
    pub create_secs: f64,
    /// Wall-clock seconds driving traffic (both nodes).
    pub traffic_secs: f64,
}

/// The per-model sketch: small on purpose — a fleet node's whole point
/// is many tiny models (the paper's sub-linear-space classifiers).
fn model_cfg() -> AwmSketchConfig {
    AwmSketchConfig::with_budget_bytes(2048).seed(9)
}

/// Deterministic labelled examples for request number `step` addressed
/// to model `salt` — both nodes replay the identical stream, so their
/// final states must match bit-for-bit.
fn examples_for(salt: u64, step: u64, n: usize) -> Vec<(SparseVector, Label)> {
    (0..n as u64)
        .map(|i| {
            let t = step * n as u64 + i;
            let noise = 64 + ((t.wrapping_mul(2654435761).wrapping_add(salt * 97)) % 4096) as u32;
            if (t + salt).is_multiple_of(2) {
                (
                    SparseVector::from_pairs(&[(salt as u32 % 61, 1.0), (noise, 0.5)]),
                    1,
                )
            } else {
                (
                    SparseVector::from_pairs(&[(salt as u32 % 53, 1.0), (noise, 0.5)]),
                    -1,
                )
            }
        })
        .collect()
}

fn bind_node(tag: &str, budget: u64, backend: ServeBackend) -> (ServerHandle, std::path::PathBuf) {
    let mut dir = std::env::temp_dir();
    dir.push(format!("wmsketch_fleet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig::new(WmSketchConfig::new(64, 2).seed(1), 1)
        .backend(backend)
        .data_dir(&dir)
        .memory_budget_bytes(budget);
    let server = WmServer::bind("127.0.0.1:0", cfg)
        .expect("bind fleet node")
        .spawn();
    (server, dir)
}

/// Runs the fleet workload and returns what it measured. Telemetry is
/// enabled for the duration (the revival-latency histogram is gated);
/// governor counters are plain atomics and need no switch.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    wmsketch_telemetry::set_enabled(true);
    let requests = if cfg.requests == 0 {
        cfg.models * 3
    } else {
        cfg.requests
    };
    let template = AwmSketch::new(model_cfg()).to_snapshot_bytes();
    let hot_model_bytes = AwmSketch::new(model_cfg()).resident_bytes() as u64;
    let hot_sum = hot_model_bytes * cfg.models as u64;
    let budget = (hot_sum as f64 * cfg.budget_fraction) as u64;

    let (governed, governed_dir) = bind_node("governed", budget, cfg.backend);
    // The all-hot reference: governed only so the registry cap lifts to
    // fleet scale; its budget (4× the hot sum) never forces an eviction.
    let (reference, reference_dir) = bind_node("reference", hot_sum * 4, cfg.backend);
    let mut gov_client = ServeClient::connect(governed.addr()).expect("connect governed");
    let mut ref_client = ServeClient::connect(reference.addr()).expect("connect reference");

    let create_started = Instant::now();
    let mut gov_ids = Vec::with_capacity(cfg.models);
    let mut ref_ids = Vec::with_capacity(cfg.models);
    for i in 0..cfg.models {
        let name = format!("f{i}");
        gov_ids.push(
            gov_client
                .create_model(&name, &template, 0)
                .expect("governed create"),
        );
        ref_ids.push(
            ref_client
                .create_model(&name, &template, 0)
                .expect("reference create"),
        );
    }
    let create_secs = create_started.elapsed().as_secs_f64();

    let stats_before = gov_client.stats().expect("stats");
    let revivals_before = stats_before.revivals_total;

    let zipf = Zipf::new(cfg.models as u64, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut steps = vec![0u64; cfg.models];
    let traffic_started = Instant::now();
    for _ in 0..requests {
        let k = (zipf.sample(&mut rng) - 1) as usize;
        let batch = examples_for(k as u64, steps[k], cfg.updates_per_request);
        steps[k] += 1;
        gov_client
            .set_model(gov_ids[k])
            .expect("governed set_model");
        gov_client.update_batch(&batch).expect("governed update");
        ref_client
            .set_model(ref_ids[k])
            .expect("reference set_model");
        ref_client.update_batch(&batch).expect("reference update");
    }
    let traffic_secs = traffic_started.elapsed().as_secs_f64();

    let stats = gov_client.stats().expect("stats");
    let revivals_in_traffic = stats.revivals_total - revivals_before;
    let hit_rate = 1.0 - revivals_in_traffic as f64 / requests as f64;
    let p99_revival_ns = gov_client
        .metrics()
        .ok()
        .and_then(|r| r.value("governor_revival_latency_ns_p99", &[]))
        .map(|v| v as u64);

    // Spot-check bit-identity across the rank range: the low ranks are
    // the zipf head (likely resident), the high ranks the cold tail
    // (certainly spilled at least once on a tight budget).
    let picks: Vec<usize> = (0..cfg.spot_checks.min(cfg.models))
        .map(|j| j * cfg.models / cfg.spot_checks.min(cfg.models).max(1))
        .collect();
    let mut bit_identical = true;
    for &k in &picks {
        gov_client
            .set_model(gov_ids[k])
            .expect("governed set_model");
        ref_client
            .set_model(ref_ids[k])
            .expect("reference set_model");
        let a = gov_client.snapshot().expect("governed snapshot");
        let b = ref_client.snapshot().expect("reference snapshot");
        if a != b {
            bit_identical = false;
            eprintln!("fleet: model f{k} diverged from the all-hot reference");
        }
    }

    governed.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&governed_dir);
    let _ = std::fs::remove_dir_all(&reference_dir);

    FleetReport {
        models: cfg.models,
        requests,
        updates_per_request: cfg.updates_per_request,
        zipf_s: cfg.zipf_s,
        hot_sum_bytes: hot_sum,
        budget_bytes: budget,
        budget_fraction: budget as f64 / hot_sum as f64,
        resident_models: stats.resident_models,
        spilled_models: stats.spilled_models,
        evictions: stats.evictions_total,
        revivals: stats.revivals_total,
        hit_rate,
        p99_revival_ns,
        bit_identical,
        spot_checks: picks.len(),
        backend: match cfg.backend {
            ServeBackend::Threaded => "threaded",
            ServeBackend::Event => "event",
        },
        create_secs,
        traffic_secs,
    }
}

impl FleetReport {
    /// The BENCH `fleet` JSON object, indented with `indent` (no
    /// trailing newline or comma).
    pub fn to_json(&self, indent: &str) -> String {
        let p99 = self
            .p99_revival_ns
            .map_or("null".to_string(), |v| v.to_string());
        format!(
            "{{\n\
             {indent}  \"models\": {}, \"requests\": {}, \"updates_per_request\": {}, \"zipf_s\": {},\n\
             {indent}  \"hot_sum_bytes\": {}, \"budget_bytes\": {}, \"budget_fraction\": {:.3},\n\
             {indent}  \"resident_models\": {}, \"spilled_models\": {}, \"evictions\": {}, \"revivals\": {},\n\
             {indent}  \"hit_rate\": {:.4}, \"p99_revival_ns\": {p99}, \"bit_identical\": {}, \"spot_checks\": {},\n\
             {indent}  \"backend\": \"{}\", \"create_secs\": {:.2}, \"traffic_secs\": {:.2}\n\
             {indent}}}",
            self.models,
            self.requests,
            self.updates_per_request,
            self.zipf_s,
            self.hot_sum_bytes,
            self.budget_bytes,
            self.budget_fraction,
            self.resident_models,
            self.spilled_models,
            self.evictions,
            self.revivals,
            self.hit_rate,
            self.bit_identical,
            self.spot_checks,
            self.backend,
            self.create_secs,
            self.traffic_secs,
        )
    }
}
