//! Micro-benchmarks for the WM-Sketch reproduction.
//!
//! The criterion-style bench targets live in `benches/`:
//!
//! * `update_throughput` — per-update cost of every budgeted method on an
//!   RCV1-like stream at the Table 2 configurations; together with the
//!   unconstrained-LR baseline this regenerates the *shape* of Fig. 7
//!   (normalized runtime).
//! * `sketch_ops` — Count-Sketch / Count-Min update and query costs.
//! * `hashing` — tabulation vs polynomial vs MurmurHash3 evaluation cost.
//! * `structures` — indexed-heap and Space-Saving operation costs.
//!
//! The `update_throughput_json` bin (`src/bin/`) measures the fused
//! single-hash update pipeline against the retained naive multi-pass path
//! at the 8 KB Figure-7 configuration and records the results in
//! `BENCH_update_throughput.json` for PR-over-PR perf tracking; the JSON
//! schema is documented in this crate's `README.md`.
//!
//! The `model_fleet` bin drives the [`fleet`] harness at full scale
//! (~10k governed models, zipf traffic, bit-identity spot checks against
//! an all-hot reference); the tracking bin embeds the same harness's
//! results as the schema-v8 `fleet` block.

#![warn(missing_docs)]

pub mod fleet;
