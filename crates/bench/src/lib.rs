//! Criterion micro-benchmarks for the WM-Sketch reproduction.
//!
//! The bench targets live in `benches/`:
//!
//! * `update_throughput` — per-update cost of every budgeted method on an
//!   RCV1-like stream at the Table 2 configurations; together with the
//!   unconstrained-LR baseline this regenerates the *shape* of Fig. 7
//!   (normalized runtime).
//! * `sketch_ops` — Count-Sketch / Count-Min update and query costs.
//! * `hashing` — tabulation vs polynomial vs MurmurHash3 evaluation cost.
//! * `structures` — indexed-heap and Space-Saving operation costs.
//!
//! This crate intentionally has no library code beyond this doc.

#![warn(missing_docs)]
