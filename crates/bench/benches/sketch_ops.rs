//! Count-Sketch / Count-Min update and point-query costs across depths —
//! the substrate costs underlying every WM-Sketch operation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wmsketch_sketch::{CountMinSketch, CountSketch};

fn bench_countsketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("countsketch");
    for depth in [1u32, 4, 16] {
        let mut cs = CountSketch::new(depth, 4096 / depth, 1);
        group.bench_function(format!("update_d{depth}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                cs.update(black_box(k % 100_000), 1.0);
            })
        });
        group.bench_function(format!("estimate_d{depth}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(cs.estimate(black_box(k % 100_000)))
            })
        });
    }
    group.finish();
}

fn bench_countmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("countmin");
    let mut cm = CountMinSketch::new(4, 1024, 2);
    group.bench_function("update_d4", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            cm.update(black_box(k % 100_000), 1.0);
        })
    });
    group.bench_function("estimate_d4", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(cm.estimate(black_box(k % 100_000)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_countsketch, bench_countmin);
criterion_main!(benches);
