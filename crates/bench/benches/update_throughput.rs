//! Per-update cost of every budgeted method on an RCV1-like stream — the
//! micro-benchmark behind Figure 7 (normalized runtime). The paper's
//! ordering: LR fastest (direct array writes), Hash ≈ 2× LR, AWM ≈ 2×
//! Hash (heap maintenance), WM slowest and growing with depth.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wmsketch_core::{
    AwmSketch, AwmSketchConfig, FeatureHashingClassifier, FeatureHashingConfig, LogisticRegression,
    LogisticRegressionConfig, OnlineLearner, ProbabilisticTruncation, SimpleTruncation,
    SpaceSavingClassifier, SpaceSavingClassifierConfig, TruncationConfig, WmSketch, WmSketchConfig,
};
use wmsketch_datagen::SyntheticClassification;
use wmsketch_learn::{Label, SparseVector};

const BUDGET: usize = 8 * 1024;
const BATCH: usize = 256;

fn stream(n: usize) -> Vec<(SparseVector, Label)> {
    let mut gen = SyntheticClassification::rcv1_like(7);
    gen.take(n)
}

fn bench_updates(c: &mut Criterion) {
    let data = stream(4096);
    let mut group = c.benchmark_group("update_8kb_rcv1");
    group.throughput(criterion::Throughput::Elements(BATCH as u64));

    macro_rules! bench_method {
        ($name:expr, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter_batched_ref(
                    || ($make, 0usize),
                    |(m, pos)| {
                        for _ in 0..BATCH {
                            let (x, y) = &data[*pos % data.len()];
                            m.update(black_box(x), *y);
                            *pos += 1;
                        }
                    },
                    BatchSize::SmallInput,
                )
            });
        };
    }

    bench_method!(
        "LR_unconstrained",
        LogisticRegression::new(LogisticRegressionConfig::new(1 << 16).track_top_k(128))
    );
    bench_method!(
        "Hash",
        FeatureHashingClassifier::new(FeatureHashingConfig::with_budget_bytes(BUDGET))
    );
    bench_method!(
        "AWM",
        AwmSketch::new(AwmSketchConfig::with_budget_bytes(BUDGET))
    );
    bench_method!(
        "WM",
        WmSketch::new(WmSketchConfig::with_budget_bytes(BUDGET))
    );
    bench_method!(
        "Trun",
        SimpleTruncation::new(TruncationConfig::simple_with_budget_bytes(BUDGET))
    );
    bench_method!(
        "PTrun",
        ProbabilisticTruncation::new(TruncationConfig::probabilistic_with_budget_bytes(BUDGET))
    );
    bench_method!(
        "SS",
        SpaceSavingClassifier::new(SpaceSavingClassifierConfig::with_budget_bytes(BUDGET))
    );
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let data = stream(4096);
    let mut awm = AwmSketch::new(AwmSketchConfig::with_budget_bytes(BUDGET));
    let mut wm = WmSketch::new(WmSketchConfig::with_budget_bytes(BUDGET));
    for (x, y) in &data {
        awm.update(x, *y);
        wm.update(x, *y);
    }
    let mut group = c.benchmark_group("weight_query");
    group.bench_function("AWM_estimate", |b| {
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 1) % (1 << 16);
            black_box(wmsketch_learn::WeightEstimator::estimate(&awm, f))
        })
    });
    group.bench_function("WM_estimate", |b| {
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 1) % (1 << 16);
            black_box(wmsketch_learn::WeightEstimator::estimate(&wm, f))
        })
    });
    group.bench_function("AWM_top128", |b| {
        b.iter(|| black_box(wmsketch_learn::TopKRecovery::recover_top_k(&awm, 128)))
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);
