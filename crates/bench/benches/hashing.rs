//! Hash-family evaluation costs: the paper's tabulation-vs-k-wise choice
//! (Appendix B) is a constant-factor question answered here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wmsketch_hashing::{murmur3_32, splitmix64, PolyHash, TabulationHash};

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_families");
    let tab = TabulationHash::new(1);
    group.bench_function("tabulation", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(tab.hash(black_box(k)))
        })
    });
    for deg in [2usize, 4, 16] {
        let poly = PolyHash::new(deg, 1);
        group.bench_function(format!("poly_k{deg}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(poly.hash(black_box(k)))
            })
        });
    }
    group.bench_function("splitmix64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(splitmix64(black_box(k)))
        })
    });
    group.bench_function("murmur3_8bytes", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(murmur3_32(&k.to_le_bytes(), 0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
