//! Heavy-hitter structure costs: the heap operations dominating the
//! AWM-Sketch's overhead over feature hashing (paper §7.4).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wmsketch_hh::{IndexedHeap, SpaceSaving, TopKWeights};

fn bench_indexed_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_heap");
    group.bench_function("insert_update_512", |b| {
        b.iter_batched_ref(
            || {
                let mut h = IndexedHeap::with_capacity(512);
                for i in 0..512u32 {
                    h.insert(i, f64::from(i));
                }
                (h, 0u32)
            },
            |(h, i)| {
                *i = i.wrapping_add(1);
                h.insert(*i % 512, f64::from(*i % 97));
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_weights");
    group.bench_function("offer_512", |b| {
        b.iter_batched_ref(
            || (TopKWeights::new(512), 0u32),
            |(t, i)| {
                *i = i.wrapping_add(1);
                black_box(t.offer(*i % 2048, f64::from(*i % 101) - 50.0));
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_spacesaving(c: &mut Criterion) {
    let mut group = c.benchmark_group("spacesaving");
    group.bench_function("update_682", |b| {
        b.iter_batched_ref(
            || (SpaceSaving::new(682), 0u64),
            |(ss, i)| {
                *i = i.wrapping_add(1);
                black_box(ss.update(*i % 10_000, 1.0));
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_indexed_heap, bench_topk, bench_spacesaving);
criterion_main!(benches);
