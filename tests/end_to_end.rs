//! Cross-crate integration tests: the paper's headline claims, end to end,
//! on seeded synthetic streams.

use wmsketch::core::{
    AwmSketch, AwmSketchConfig, LogisticRegression, LogisticRegressionConfig, OnlineLearner,
    SimpleTruncation, TopKRecovery, TruncationConfig, WeightEstimator,
};
use wmsketch::datagen::{ClassificationConfig, SignalPlacement, SyntheticClassification};
use wmsketch::learn::{rel_err_top_k, OnlineErrorRate};

fn small_stream(seed: u64) -> SyntheticClassification {
    // Signal spread over 1024 features — wider than a 2 KB truncation
    // baseline's 256 exact slots, so methods genuinely separate (the
    // paper's "w* may be dense" regime).
    ClassificationConfig {
        dim: 1 << 14,
        nnz: 30,
        zipf_s: 1.1,
        n_signal: 1024,
        placement: SignalPlacement::Head,
        signal_strength: 2.5,
        seed,
    }
    .build()
}

/// Train reference + AWM + Trun on the same stream; AWM must recover the
/// top-K with lower relative error than simple truncation at equal budget.
#[test]
fn awm_beats_simple_truncation_on_recovery() {
    let n = 30_000;
    let k = 32;
    let budget = 2 * 1024; // tight budget separates the methods
    let mut lr = LogisticRegression::new(
        LogisticRegressionConfig::new(1 << 14)
            .lambda(1e-6)
            .track_top_k(0),
    );
    {
        let mut gen = small_stream(0);
        for _ in 0..n {
            let (x, y) = gen.next_example();
            lr.update(&x, y);
        }
    }
    let w_star = lr.weights();

    let mut awm_errs = Vec::new();
    let mut trun_errs = Vec::new();
    for seed in 0..3u64 {
        let mut awm = AwmSketch::new(
            AwmSketchConfig::with_budget_bytes(budget)
                .lambda(1e-6)
                .seed(seed),
        );
        let mut trun =
            SimpleTruncation::new(TruncationConfig::simple_with_budget_bytes(budget).lambda(1e-6));
        let mut gen = small_stream(0);
        for _ in 0..n {
            let (x, y) = gen.next_example();
            awm.update(&x, y);
            trun.update(&x, y);
        }
        awm_errs.push(rel_err_top_k(&awm.recover_top_k(k), &w_star, k));
        trun_errs.push(rel_err_top_k(&trun.recover_top_k(k), &w_star, k));
    }
    let awm_med = med(&mut awm_errs);
    let trun_med = med(&mut trun_errs);
    assert!(
        awm_med <= trun_med + 0.02,
        "AWM {awm_med:.3} should beat Trun {trun_med:.3}"
    );
    assert!(
        awm_med < 1.5,
        "AWM recovery should be near-optimal: {awm_med:.3}"
    );
}

/// AWM classification accuracy must be within noise of feature hashing at
/// equal budget (the paper finds it slightly *better*).
#[test]
fn awm_classification_competitive_with_feature_hashing() {
    use wmsketch::learn::{FeatureHashingClassifier, FeatureHashingConfig};
    let n = 30_000;
    let budget = 4 * 1024;
    let mut awm = AwmSketch::new(
        AwmSketchConfig::with_budget_bytes(budget)
            .lambda(1e-6)
            .seed(1),
    );
    let mut hash = FeatureHashingClassifier::new(
        FeatureHashingConfig::with_budget_bytes(budget)
            .lambda(1e-6)
            .seed(1),
    );
    let mut awm_err = OnlineErrorRate::new();
    let mut hash_err = OnlineErrorRate::new();
    let mut gen = small_stream(1);
    for _ in 0..n {
        let (x, y) = gen.next_example();
        awm_err.record(awm.predict(&x), y);
        hash_err.record(hash.predict(&x), y);
        awm.update(&x, y);
        hash.update(&x, y);
    }
    assert!(
        awm_err.rate() <= hash_err.rate() + 0.01,
        "AWM {:.4} vs Hash {:.4}",
        awm_err.rate(),
        hash_err.rate()
    );
}

/// Weight estimates from the sketch approach the dense model's weights for
/// the heavy features (the (ε, 1)-weight-estimation contract).
#[test]
fn heavy_weight_estimates_track_dense_model() {
    let n = 40_000;
    let mut lr = LogisticRegression::new(
        LogisticRegressionConfig::new(1 << 14)
            .lambda(1e-6)
            .track_top_k(0),
    );
    let mut awm = AwmSketch::new(AwmSketchConfig::new(256, 2048).lambda(1e-6).seed(3));
    let mut gen = small_stream(2);
    for _ in 0..n {
        let (x, y) = gen.next_example();
        lr.update(&x, y);
        awm.update(&x, y);
    }
    let w_star = lr.weights();
    let l1: f64 = w_star.iter().map(|w| w.abs()).sum();
    // Check the 10 heaviest true weights are estimated within 5% of ‖w*‖₁
    // (far tighter than the theorem's ε‖w*‖₁ budget at this size).
    let top = wmsketch::learn::metrics::top_k_of_dense(&w_star, 10);
    for e in &top {
        let est = awm.estimate(e.feature);
        assert!(
            (est - e.weight).abs() <= 0.05 * l1,
            "feature {}: est {est:.3} vs true {:.3} (l1 {l1:.1})",
            e.feature,
            e.weight
        );
    }
}

/// Everything in the pipeline is deterministic given seeds.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut awm = AwmSketch::new(
            AwmSketchConfig::with_budget_bytes(4096)
                .lambda(1e-5)
                .seed(9),
        );
        let mut gen = small_stream(3);
        for _ in 0..5_000 {
            let (x, y) = gen.next_example();
            awm.update(&x, y);
        }
        awm.recover_top_k(16)
            .into_iter()
            .map(|e| (e.feature, e.weight))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Budget accounting: every budget constructor respects its budget.
#[test]
fn budget_constructors_respect_budgets() {
    for budget in [2048usize, 4096, 8192, 16384, 32768] {
        let awm = AwmSketch::new(AwmSketchConfig::with_budget_bytes(budget));
        assert!(awm.memory_bytes() <= budget);
        let trun = SimpleTruncation::new(TruncationConfig::simple_with_budget_bytes(budget));
        assert!(trun.memory_bytes() <= budget);
    }
}

fn med(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[(xs.len() - 1) / 2]
}
