//! Integration tests for the §8 applications, exercising the full
//! generator → learner → evaluation pipelines.

use wmsketch::apps::{
    DeltoidDetector, ExactPmi, ExactRatioTable, ExactRiskTable, PairedCountMin, PmiEstimator,
    PmiEstimatorConfig,
};
use wmsketch::core::{AwmSketch, AwmSketchConfig, OnlineLearner, TopKRecovery};
use wmsketch::datagen::{
    CorpusConfig, CorpusGen, DisbursementConfig, DisbursementGen, PacketTraceConfig, PacketTraceGen,
};
use wmsketch::learn::{pearson, recall_at_threshold};

/// §8.1: AWM weights correlate positively with exact relative risk.
#[test]
fn explanation_weights_correlate_with_risk() {
    let mut gen = DisbursementGen::new(DisbursementConfig {
        n_columns: 4,
        values_per_column: 1 << 10,
        seed: 1,
        ..Default::default()
    });
    // Constant rate so weights reach their log-odds asymptotes on a
    // short stream (see the fig9 experiment's note).
    let mut clf = AwmSketch::new(
        AwmSketchConfig::new(512, 2048)
            .lambda(1e-6)
            .learning_rate(wmsketch::learn::LearningRate::Constant(0.1))
            .seed(2),
    );
    let mut risks = ExactRiskTable::new();
    for _ in 0..60_000 {
        let row = gen.next_row();
        risks.observe_row(&row.features, row.label == 1);
        for (x, y) in row.one_sparse_examples() {
            clf.update(&x, y);
        }
    }
    let mut ws = Vec::new();
    let mut lrs = Vec::new();
    for e in clf.recover_top_k(512) {
        if let Some(r) = risks.relative_risk(e.feature) {
            // Require enough observations for a stable exact-risk estimate
            // (the fig9 harness uses the same cutoff): rare features'
            // relative risks are noise and dilute the correlation.
            if r.is_finite() && r > 0.0 && risks.support(e.feature) >= 100 {
                ws.push(e.weight);
                lrs.push(r.ln());
            }
        }
    }
    assert!(
        ws.len() > 50,
        "need enough scored features, got {}",
        ws.len()
    );
    let r = pearson(&ws, &lrs);
    assert!(r > 0.6, "Pearson(weight, log risk) = {r:.3}");
}

/// §8.2: the AWM detector beats an equal-memory paired Count-Min on
/// deltoid recall.
#[test]
fn deltoid_awm_beats_paired_cm_at_equal_memory() {
    let budget = 16 * 1024;
    let mut gen = PacketTraceGen::new(PacketTraceConfig {
        n_addrs: 1 << 15,
        n_deltoids: 64,
        ratio: 64.0,
        stride: 11,
        seed: 4,
        ..Default::default()
    });
    let mut det = DeltoidDetector::new(AwmSketch::new(
        AwmSketchConfig::with_budget_bytes(budget)
            .lambda(1e-6)
            .seed(5),
    ));
    let mut cm = PairedCountMin::with_budget_bytes(budget, 6);
    let mut exact = ExactRatioTable::new();
    for _ in 0..200_000 {
        let e = gen.next_event();
        det.observe(e);
        cm.observe(e);
        exact.observe(e);
    }
    let relevant: Vec<u64> = exact
        .items_above(2.5, 20)
        .into_iter()
        .map(u64::from)
        .collect();
    assert!(!relevant.is_empty());
    let awm_top: Vec<u64> = det.top_outbound(512).into_iter().map(u64::from).collect();
    let cm_top: Vec<u64> = cm
        .top_k_by_ratio(exact.items(), 512)
        .into_iter()
        .map(u64::from)
        .collect();
    let awm_recall = recall_at_threshold(&awm_top, &relevant);
    let cm_recall = recall_at_threshold(&cm_top, &relevant);
    assert!(
        awm_recall >= cm_recall,
        "AWM {awm_recall:.2} vs CM {cm_recall:.2} over {} relevant",
        relevant.len()
    );
    assert!(awm_recall > 0.5, "AWM recall too low: {awm_recall:.2}");
}

/// §8.3: estimated PMI of planted collocations tracks exact PMI with
/// positive correlation, and planted pairs rank above frequent pairs.
#[test]
fn pmi_estimates_track_exact_values() {
    let mut gen = CorpusGen::new(CorpusConfig {
        vocab: 1 << 12,
        n_collocations: 16,
        collocation_rate: 0.02,
        collocation_base: 128,
        seed: 7,
        ..Default::default()
    });
    let mut est = PmiEstimator::new(PmiEstimatorConfig {
        width: 1 << 14,
        heap: 512,
        window: 4,
        seed: 8,
        ..Default::default()
    });
    let mut exact = ExactPmi::new(4);
    for _ in 0..150_000 {
        let t = gen.next_token();
        est.observe_token(t);
        exact.observe_token(t);
    }
    let mut est_vals = Vec::new();
    let mut true_vals = Vec::new();
    for &(u, v) in gen.collocations() {
        if let Some(p) = exact.pmi(u, v) {
            est_vals.push(est.estimate_pmi(u, v));
            true_vals.push(p);
        }
    }
    assert!(est_vals.len() >= 8);
    // All planted collocations should be estimated clearly positive, and
    // higher than the most frequent pair's estimate.
    let freq_pair_est = est.estimate_pmi(0, 1);
    let positive = est_vals.iter().filter(|&&e| e > freq_pair_est).count();
    assert!(
        positive as f64 >= 0.8 * est_vals.len() as f64,
        "only {positive}/{} planted pairs beat the frequent pair",
        est_vals.len()
    );
}
